#include "nvme/command.hh"

#include <cstring>

namespace morpheus::nvme {

namespace {

template <typename T>
void
put(std::array<std::uint8_t, kCommandBytes> &raw, std::size_t off, T v)
{
    std::memcpy(raw.data() + off, &v, sizeof(T));
}

template <typename T>
T
get(const std::array<std::uint8_t, kCommandBytes> &raw, std::size_t off)
{
    T v;
    std::memcpy(&v, raw.data() + off, sizeof(T));
    return v;
}

}  // namespace

// Layout (little-endian, byte offsets):
//   0  opcode        1  flags (0)     2  cid          4  nsid
//   8  cdw15 (tenant; spare spec-reserved bytes)
//  12  traceId (spare CDW2 bytes; observability attribution)
//  16  metadata (0) 24  prp1         32  prp2
//  40  slba (cdw10/11)               48  nlb (cdw12 low 16)
//  50  instanceId (cdw12 high 16 + cdw12b; we use 4 bytes at 50)
//  54  reserved
//  56  cdw13        60  cdw14 truncated to fit 64 bytes
//
// The exact packing is internal to this simulator; what matters for
// fidelity is that every command round-trips through exactly 64 bytes.
std::array<std::uint8_t, kCommandBytes>
Command::encode() const
{
    std::array<std::uint8_t, kCommandBytes> raw{};
    put(raw, 0, static_cast<std::uint8_t>(opcode));
    put(raw, 2, cid);
    put(raw, 4, nsid);
    put(raw, 8, cdw15);
    put(raw, 12, traceId);
    put(raw, 24, prp1);
    put(raw, 32, prp2);
    put(raw, 40, slba);
    put(raw, 48, nlb);
    put(raw, 50, instanceId);
    put(raw, 56, cdw13);
    put(raw, 60, cdw14);
    return raw;
}

Command
Command::decode(const std::array<std::uint8_t, kCommandBytes> &raw)
{
    Command c;
    c.opcode = static_cast<Opcode>(get<std::uint8_t>(raw, 0));
    c.cid = get<std::uint16_t>(raw, 2);
    c.nsid = get<std::uint32_t>(raw, 4);
    c.cdw15 = get<std::uint32_t>(raw, 8);
    c.traceId = get<std::uint32_t>(raw, 12);
    c.prp1 = get<std::uint64_t>(raw, 24);
    c.prp2 = get<std::uint64_t>(raw, 32);
    c.slba = get<std::uint64_t>(raw, 40);
    c.nlb = get<std::uint16_t>(raw, 48);
    c.instanceId = get<std::uint32_t>(raw, 50);
    c.cdw13 = get<std::uint32_t>(raw, 56);
    c.cdw14 = get<std::uint32_t>(raw, 60);
    return c;
}

// Completion layout follows the NVMe CQE (little-endian, byte offsets):
//   0  dw0 (command-specific)   4  dw1 (reserved, 0)
//   8  sqHead   10  sqId   12  cid   14  phase (bit 0) | status << 1
// postedAt is simulation metadata and does not cross the wire.
std::array<std::uint8_t, kCompletionBytes>
Completion::encode() const
{
    std::array<std::uint8_t, kCompletionBytes> raw{};
    std::memcpy(raw.data() + 0, &dw0, sizeof(dw0));
    std::memcpy(raw.data() + 8, &sqHead, sizeof(sqHead));
    std::memcpy(raw.data() + 10, &sqId, sizeof(sqId));
    std::memcpy(raw.data() + 12, &cid, sizeof(cid));
    const std::uint16_t sf = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(status) << 1) | (phase ? 1 : 0));
    std::memcpy(raw.data() + 14, &sf, sizeof(sf));
    return raw;
}

Completion
Completion::decode(const std::array<std::uint8_t, kCompletionBytes> &raw)
{
    Completion c;
    std::memcpy(&c.dw0, raw.data() + 0, sizeof(c.dw0));
    std::memcpy(&c.sqHead, raw.data() + 8, sizeof(c.sqHead));
    std::memcpy(&c.sqId, raw.data() + 10, sizeof(c.sqId));
    std::memcpy(&c.cid, raw.data() + 12, sizeof(c.cid));
    std::uint16_t sf = 0;
    std::memcpy(&sf, raw.data() + 14, sizeof(sf));
    c.phase = (sf & 1) != 0;
    c.status = static_cast<Status>(sf >> 1);
    return c;
}

const char *
statusName(Status s)
{
    switch (s) {
      case Status::kSuccess: return "Success";
      case Status::kInvalidOpcode: return "InvalidOpcode";
      case Status::kInvalidField: return "InvalidField";
      case Status::kTransientTransferError: return "TransientTransferError";
      case Status::kLbaOutOfRange: return "LbaOutOfRange";
      case Status::kNoSuchInstance: return "NoSuchInstance";
      case Status::kAppLoadFailed: return "AppLoadFailed";
      case Status::kInstanceBusy: return "InstanceBusy";
      case Status::kAdmissionDenied: return "AdmissionDenied";
      case Status::kDsramExhausted: return "DsramExhausted";
      case Status::kAppFault: return "AppFault";
      case Status::kSequenceError: return "SequenceError";
      case Status::kOverloaded: return "Overloaded";
      case Status::kMediaError: return "MediaError";
      case Status::kCommandTimeout: return "CommandTimeout";
    }
    return "Unknown";
}

bool
isRetryable(Status s)
{
    switch (s) {
      case Status::kTransientTransferError:  // link glitch; resubmit
      case Status::kInstanceBusy:            // table full; wait + retry
      case Status::kDsramExhausted:          // budget pressure; wait + retry
      case Status::kOverloaded:              // backlog drains; wait + retry
      case Status::kMediaError:              // read-retry recoverable
      case Status::kSequenceError:           // gap fills, then resubmit
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kFlush: return "Flush";
      case Opcode::kWrite: return "Write";
      case Opcode::kRead: return "Read";
      case Opcode::kDsm: return "Dsm";
      case Opcode::kMInit: return "MINIT";
      case Opcode::kMRead: return "MREAD";
      case Opcode::kMWrite: return "MWRITE";
      case Opcode::kMDeinit: return "MDEINIT";
    }
    return "Unknown";
}

}  // namespace morpheus::nvme
