/**
 * @file
 * NVMe command set: standard I/O opcodes plus the four Morpheus
 * extensions (paper §IV-A), and the 64-byte wire format.
 *
 * The Morpheus commands reuse the one-byte opcode space left free by
 * the NVMe standard (vendor-specific range):
 *  - MINIT:   install a StorageApp (PRP1 points at the code image;
 *             CDW13 carries the code length, CDW14 the argument word,
 *             CDW15 the submitting tenant, SLBA the declared stream
 *             length, and PRP2's low dword — MINIT carries no second
 *             data pointer — the requested per-instance D-SRAM budget
 *             in bytes, 0 for the device default share).
 *  - MREAD:   like Read, but the data is routed through the StorageApp
 *             selected by the instance ID before being DMAed out.
 *  - MWRITE:  like Write, with StorageApp processing on the inbound
 *             data.
 *  - MDEINIT: tear down the instance; the completion's DW0 returns the
 *             StorageApp's return value.
 */

#ifndef MORPHEUS_NVME_COMMAND_HH
#define MORPHEUS_NVME_COMMAND_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace morpheus::nvme {

/** Bytes per logical block (LBA). */
constexpr std::uint32_t kBlockBytes = 512;

/** Size of an encoded submission queue entry. */
constexpr std::size_t kCommandBytes = 64;

/** Size of an encoded completion queue entry. */
constexpr std::size_t kCompletionBytes = 16;

/** I/O command set opcodes (plus Morpheus vendor extensions). */
enum class Opcode : std::uint8_t {
    kFlush = 0x00,
    kWrite = 0x01,
    kRead = 0x02,
    kDsm = 0x09,  ///< Dataset Management (deallocate/TRIM).

    // Morpheus extensions (vendor-specific opcode space).
    kMInit = 0x80,
    kMRead = 0x81,
    kMWrite = 0x82,
    kMDeinit = 0x83,
};

/** True for the four Morpheus extension opcodes. */
constexpr bool
isMorpheusOpcode(Opcode op)
{
    return op == Opcode::kMInit || op == Opcode::kMRead ||
           op == Opcode::kMWrite || op == Opcode::kMDeinit;
}

/** Human-readable opcode mnemonic ("MREAD", "Write", ...). */
const char *opcodeName(Opcode op);

/** Completion status codes (subset). */
enum class Status : std::uint16_t {
    kSuccess = 0x0,
    kInvalidOpcode = 0x1,
    kInvalidField = 0x2,
    kTransientTransferError = 0x22,  // transient PCIe/DMA fault; retryable
    kLbaOutOfRange = 0x80,
    kNoSuchInstance = 0x1C0,   // Morpheus: unknown instance ID
    kAppLoadFailed = 0x1C1,    // Morpheus: image too big for I-SRAM
    kInstanceBusy = 0x1C2,     // Morpheus: instance table full / retry
    kAdmissionDenied = 0x1C3,  // Morpheus: tenant over instance quota
    kDsramExhausted = 0x1C4,   // Morpheus: no D-SRAM budget on the core
    kAppFault = 0x1C5,         // Morpheus: StorageApp crashed mid-command
    /** Morpheus: MREAD chunk arrived out of stream order. The parse is
     *  a stateful stream, so after one chunk fails the firmware bounces
     *  any later chunk of the same instance instead of feeding the
     *  parser across the gap. Retryable: resubmit once the missing
     *  chunk has landed. */
    kSequenceError = 0x1C6,
    /** Morpheus: the scheduler front end's overload valve refused the
     *  MINIT — the device-wide declared backlog already exceeds the
     *  configured limit, so admitting more work would only grow the
     *  queue. Retryable; the completion's DW0 carries a retry-after
     *  hint derived from the backlog drain rate. */
    kOverloaded = 0x1C7,
    kMediaError = 0x281,       // uncorrectable flash read; retryable
    /** Host-synthesized: no CQE arrived before the command deadline.
     *  Never produced by the device; the driver fabricates it when it
     *  aborts a timed-out command (dropped CQE, hung StorageApp). */
    kCommandTimeout = 0x3F1,
};

/** Human-readable status mnemonic ("MediaError", "Success", ...). */
const char *statusName(Status s);

/**
 * Driver-side classification: true when a command that completed with
 * this status may succeed if simply resubmitted. Retryable statuses
 * model transient conditions (media retry-recoverable reads, link
 * glitches, busy/over-budget bounces); everything else is treated as
 * fatal for the command — resubmitting the same bytes would fail the
 * same way (bad opcode/field, crashed app, missing instance) or has
 * unknown device-side state (timeout abort).
 */
bool isRetryable(Status s);

/**
 * A decoded submission queue entry. Field names follow the NVMe spec
 * loosely; Morpheus-specific meanings are noted per command above.
 */
struct Command
{
    Opcode opcode = Opcode::kFlush;
    std::uint16_t cid = 0;        ///< Command identifier.
    std::uint32_t nsid = 1;       ///< Namespace.
    std::uint64_t prp1 = 0;       ///< Data pointer (bus address).
    std::uint64_t prp2 = 0;       ///< Second data pointer.
    std::uint64_t slba = 0;       ///< Starting LBA.
    std::uint16_t nlb = 0;        ///< Number of blocks, 0's based.
    std::uint32_t instanceId = 0; ///< Morpheus instance (CDW12 high bits).
    std::uint32_t cdw13 = 0;      ///< MINIT: code length in bytes.
    std::uint32_t cdw14 = 0;      ///< MINIT: argument word.
    std::uint32_t cdw15 = 0;      ///< MINIT: submitting tenant ID.
    /** Observability trace id, stamped by the driver at submission.
     *  Rides in the SQE's spare CDW2 bytes so every layer that decodes
     *  the command can attribute its work (0 = untraced). In a
     *  multi-SSD fleet each device's driver stamps ids from its own
     *  block (device d uses d<<24 | counter, see
     *  NvmeDriver::setTraceIdBase), so ids stay unique fleet-wide and
     *  a merged trace never attributes one device's work to another. */
    std::uint32_t traceId = 0;

    /** Number of logical blocks (NVMe encodes nlb as 0-based). */
    std::uint32_t numBlocks() const { return std::uint32_t(nlb) + 1; }

    /** Payload size in bytes for read/write style commands. */
    std::uint64_t
    dataBytes() const
    {
        return std::uint64_t(numBlocks()) * kBlockBytes;
    }

    /** Encode to the 64-byte wire format. */
    std::array<std::uint8_t, kCommandBytes> encode() const;

    /** Decode from the 64-byte wire format. */
    static Command decode(
        const std::array<std::uint8_t, kCommandBytes> &raw);

    bool operator==(const Command &) const = default;
};

/** Controller identification data (admin Identify, abridged). */
struct IdentifyData
{
    char model[24] = "Morpheus-SSD 512GB";
    std::uint64_t capacityBlocks = 0;
    std::uint32_t maxTransferBlocks = 0;
    std::uint16_t numQueues = 0;
    /** Vendor flag: the four Morpheus extension opcodes are live. */
    bool morpheusCapable = false;
};

/** A decoded completion queue entry. */
struct Completion
{
    std::uint32_t dw0 = 0;       ///< Command-specific result.
    std::uint16_t sqHead = 0;    ///< SQ head pointer echo.
    std::uint16_t sqId = 0;
    std::uint16_t cid = 0;
    Status status = Status::kSuccess;
    bool phase = false;          ///< Phase tag (flips per CQ wrap).

    /** Tick at which the entry was posted (simulation metadata). */
    sim::Tick postedAt = 0;

    bool ok() const { return status == Status::kSuccess; }

    /** Encode to the 16-byte wire format (postedAt is not on the wire). */
    std::array<std::uint8_t, kCompletionBytes> encode() const;

    /** Decode from the 16-byte wire format. */
    static Completion decode(
        const std::array<std::uint8_t, kCompletionBytes> &raw);
};

}  // namespace morpheus::nvme

#endif  // MORPHEUS_NVME_COMMAND_HH
