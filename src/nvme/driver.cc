#include "nvme/driver.hh"

#include "sim/logging.hh"

namespace morpheus::nvme {

namespace {

std::uint32_t
key(std::uint16_t qid, std::uint16_t cid)
{
    return (static_cast<std::uint32_t>(qid) << 16) | cid;
}

}  // namespace

NvmeDriver::NvmeDriver(NvmeController &controller)
    : _controller(controller)
{
}

std::uint16_t
NvmeDriver::openQueue(std::uint16_t entries, pcie::Addr sq_base,
                      pcie::Addr cq_base)
{
    const std::uint16_t qid =
        _controller.createQueuePair(entries, sq_base, cq_base);
    _nextCid[qid] = 0;
    return qid;
}

Submitted
NvmeDriver::submit(std::uint16_t qid, Command cmd)
{
    auto it = _nextCid.find(qid);
    MORPHEUS_ASSERT(it != _nextCid.end(), "submit to unopened queue ",
                    qid);
    cmd.cid = it->second++;
    SubmissionQueue &sq = _controller.sq(qid);
    MORPHEUS_ASSERT(!sq.full(), "SQ ", qid,
                    " full; increase entries or drain completions");
    sq.push(cmd);
    return Submitted{qid, cmd.cid};
}

sim::Tick
NvmeDriver::ring(std::uint16_t qid, sim::Tick now)
{
    return _controller.ringDoorbell(qid, now);
}

Completion
NvmeDriver::wait(const Submitted &token)
{
    const auto cached = _pending.find(key(token.qid, token.cid));
    if (cached != _pending.end()) {
        const Completion cqe = cached->second;
        _pending.erase(cached);
        return cqe;
    }
    CompletionQueue &cq = _controller.cq(token.qid);
    while (cq.hasNew()) {
        const Completion cqe = cq.take();
        ++_reaped;
        if (cqe.cid == token.cid)
            return cqe;
        _pending.emplace(key(token.qid, cqe.cid), cqe);
    }
    MORPHEUS_PANIC("no completion for qid=", token.qid,
                   " cid=", token.cid,
                   " (command never rung or CQ drained elsewhere)");
}

Completion
NvmeDriver::io(std::uint16_t qid, Command cmd, sim::Tick now)
{
    const Submitted token = submit(qid, cmd);
    ring(qid, now);
    return wait(token);
}

}  // namespace morpheus::nvme
