#include "nvme/driver.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace morpheus::nvme {

namespace {

std::uint32_t
key(std::uint16_t qid, std::uint16_t cid)
{
    return (static_cast<std::uint32_t>(qid) << 16) | cid;
}

/** Payload bytes a command moves, as seen from the host. */
std::uint64_t
tracedBytes(const Command &cmd)
{
    switch (cmd.opcode) {
      case Opcode::kMInit:
        return cmd.cdw13;  // code image length
      case Opcode::kMRead:
      case Opcode::kMWrite:
      case Opcode::kRead:
      case Opcode::kWrite:
        return cmd.dataBytes();
      default:
        return 0;
    }
}

}  // namespace

NvmeDriver::NvmeDriver(NvmeController &controller)
    : _controller(controller)
{
}

std::uint16_t
NvmeDriver::openQueue(std::uint16_t entries, pcie::Addr sq_base,
                      pcie::Addr cq_base)
{
    const std::uint16_t qid =
        _controller.createQueuePair(entries, sq_base, cq_base);
    _nextCid[qid] = 0;
    return qid;
}

Submitted
NvmeDriver::submit(std::uint16_t qid, Command cmd)
{
    auto it = _nextCid.find(qid);
    MORPHEUS_ASSERT(it != _nextCid.end(), "submit to unopened queue ",
                    qid);
    cmd.cid = it->second++;
    cmd.traceId = _nextTraceId++;
    SubmissionQueue &sq = _controller.sq(qid);
    MORPHEUS_ASSERT(!sq.full(), "SQ ", qid,
                    " full; increase entries or drain completions");
    sq.push(cmd);
    if (obs::traceSink() != nullptr) {
        _inflight[key(qid, cmd.cid)] = InflightTrace{
            cmd.traceId, cmd.opcode, tracedBytes(cmd), 0};
        _unrung[qid].push_back(key(qid, cmd.cid));
    }
    if (_recovery.enabled)
        _unrungIssued[qid].push_back(key(qid, cmd.cid));
    return Submitted{qid, cmd.cid, cmd.traceId};
}

sim::Tick
NvmeDriver::ring(std::uint16_t qid, sim::Tick now)
{
    if (!_inflight.empty()) {
        // The host-visible span starts when the doorbell rings: that is
        // when the command leaves the host's hands.
        auto it = _unrung.find(qid);
        if (it != _unrung.end()) {
            for (const std::uint32_t k : it->second) {
                const auto inflight = _inflight.find(k);
                if (inflight != _inflight.end())
                    inflight->second.rungAt = now;
            }
            it->second.clear();
        }
    }
    if (_recovery.enabled) {
        auto it = _unrungIssued.find(qid);
        if (it != _unrungIssued.end()) {
            for (const std::uint32_t k : it->second)
                _issuedAt[k] = now;
            it->second.clear();
        }
    }
    return _controller.ringDoorbell(qid, now);
}

void
NvmeDriver::noteReaped(std::uint16_t qid, const Completion &cqe)
{
    const auto it = _inflight.find(key(qid, cqe.cid));
    if (it == _inflight.end())
        return;
    if (auto *sink = obs::traceSink()) {
        const InflightTrace &t = it->second;
        obs::Span span;
        span.track =
            _trackPrefix + "host.queue[" + std::to_string(qid) + "]";
        span.name = opcodeName(t.opcode);
        span.category = "nvme";
        span.begin = t.rungAt;
        span.end = cqe.postedAt;
        span.trace = t.trace;
        span.bytes = t.bytes;
        span.status = static_cast<std::uint32_t>(cqe.status);
        sink->record(span);
    }
    _inflight.erase(it);
}

Completion
NvmeDriver::wait(const Submitted &token)
{
    const auto cached = _pending.find(key(token.qid, token.cid));
    if (cached != _pending.end()) {
        const Completion cqe = cached->second;
        _pending.erase(cached);
        return cqe;
    }
    CompletionQueue &cq = _controller.cq(token.qid);
    while (cq.hasNew()) {
        const Completion cqe = cq.take();
        ++_reaped;
        if (!_inflight.empty())
            noteReaped(token.qid, cqe);
        if (_recovery.enabled)
            _issuedAt.erase(key(token.qid, cqe.cid));
        if (cqe.cid == token.cid)
            return cqe;
        _pending.emplace(key(token.qid, cqe.cid), cqe);
    }
    if (_recovery.enabled) {
        // The CQE never arrived (dropped, or the instance hung and the
        // watchdog suppressed it). Abort the command at its deadline
        // and hand back a host-synthesized timeout completion.
        const auto issued = _issuedAt.find(key(token.qid, token.cid));
        if (issued != _issuedAt.end()) {
            Completion cqe;
            cqe.cid = token.cid;
            cqe.sqId = token.qid;
            cqe.status = Status::kCommandTimeout;
            cqe.postedAt = issued->second + _recovery.commandTimeout;
            _issuedAt.erase(issued);
            ++_timeouts;
            if (auto *sink = obs::traceSink()) {
                obs::Span s;
                s.track = _trackPrefix + "host.queue[" +
                          std::to_string(token.qid) + "]";
                s.name = "timeout_abort";
                s.category = "nvme";
                s.begin = cqe.postedAt;
                s.end = cqe.postedAt;
                s.instant = true;
                const auto t = _inflight.find(key(token.qid, token.cid));
                if (t != _inflight.end())
                    s.trace = t->second.trace;
                s.status = static_cast<std::uint32_t>(cqe.status);
                sink->record(s);
            }
            _inflight.erase(key(token.qid, token.cid));
            return cqe;
        }
    }
    MORPHEUS_PANIC("no completion for qid=", token.qid,
                   " cid=", token.cid,
                   " (command never rung or CQ drained elsewhere)");
}

Completion
NvmeDriver::io(std::uint16_t qid, Command cmd, sim::Tick now)
{
    const Submitted token = submit(qid, cmd);
    ring(qid, now);
    return wait(token);
}

void
NvmeDriver::setRecovery(const DriverRecoveryConfig &cfg)
{
    _recovery = cfg;
    if (cfg.enabled)
        _jitterRng.emplace(cfg.jitterSeed);
    else
        _jitterRng.reset();
}

sim::Tick
NvmeDriver::backoffDelay(unsigned attempt)
{
    // Exponential growth, capped so the shift cannot overflow.
    const sim::Tick base =
        _recovery.backoffBase << std::min(attempt, 16u);
    double scale = 1.0;
    if (_jitterRng && _recovery.backoffJitter > 0.0) {
        scale = 1.0 + _recovery.backoffJitter *
                          (2.0 * _jitterRng->nextDouble() - 1.0);
    }
    return static_cast<sim::Tick>(static_cast<double>(base) * scale);
}

Completion
NvmeDriver::ioRetry(std::uint16_t qid, Command cmd, sim::Tick now)
{
    sim::Tick t = now;
    for (unsigned attempt = 0;; ++attempt) {
        const Completion cqe = io(qid, cmd, t);
        if (cqe.ok() || !_recovery.enabled || !isRetryable(cqe.status) ||
            attempt >= _recovery.maxRetries) {
            return cqe;
        }
        ++_retries;
        // Busy/over-budget bounces carry an NVMe-style retry-after
        // hint in DW0 (microseconds, derived from arbiter backlog);
        // statuses without a hint back off exponentially.
        sim::Tick delay;
        if ((cqe.status == Status::kInstanceBusy ||
             cqe.status == Status::kDsramExhausted) &&
            cqe.dw0 != 0) {
            delay = sim::Tick(cqe.dw0) * sim::kPsPerUs;
        } else {
            delay = backoffDelay(attempt);
        }
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track =
                _trackPrefix + "host.queue[" + std::to_string(qid) + "]";
            s.name = "retry";
            s.category = "nvme";
            s.begin = cqe.postedAt;
            s.end = cqe.postedAt;
            s.instant = true;
            s.status = static_cast<std::uint32_t>(cqe.status);
            sink->record(s);
        }
        t = cqe.postedAt + delay;
    }
}

}  // namespace morpheus::nvme
