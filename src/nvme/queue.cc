#include "nvme/queue.hh"

#include "sim/logging.hh"

namespace morpheus::nvme {

SubmissionQueue::SubmissionQueue(std::uint16_t entries)
    : _entries(entries), _ring(entries)
{
    MORPHEUS_ASSERT(entries >= 2, "SQ needs at least 2 entries");
}

bool
SubmissionQueue::full() const
{
    return static_cast<std::uint16_t>((_tail + 1) % _entries) == _head;
}

std::uint16_t
SubmissionQueue::freeSlots() const
{
    // One slot is sacrificed to distinguish full from empty.
    const std::uint16_t used =
        static_cast<std::uint16_t>((_tail + _entries - _head) % _entries);
    return static_cast<std::uint16_t>(_entries - 1 - used);
}

void
SubmissionQueue::push(const Command &cmd)
{
    MORPHEUS_ASSERT(!full(), "push to a full SQ");
    _ring[_tail] = cmd;
    _tail = static_cast<std::uint16_t>((_tail + 1) % _entries);
}

Command
SubmissionQueue::pop()
{
    MORPHEUS_ASSERT(!empty(), "pop from an empty SQ");
    const Command cmd = _ring[_head];
    _head = static_cast<std::uint16_t>((_head + 1) % _entries);
    return cmd;
}

CompletionQueue::CompletionQueue(std::uint16_t entries)
    : _entries(entries), _ring(entries), _valid(entries, false)
{
    MORPHEUS_ASSERT(entries >= 2, "CQ needs at least 2 entries");
}

void
CompletionQueue::post(Completion cqe)
{
    const std::uint16_t next =
        static_cast<std::uint16_t>((_tail + 1) % _entries);
    MORPHEUS_ASSERT(next != _head,
                    "CQ overrun: host not consuming completions");
    cqe.phase = _producerPhase;
    _ring[_tail] = cqe;
    _valid[_tail] = true;
    _tail = next;
    if (_tail == 0)
        _producerPhase = !_producerPhase;
}

bool
CompletionQueue::hasNew() const
{
    return _valid[_head] && _ring[_head].phase == _consumerPhase;
}

Completion
CompletionQueue::take()
{
    MORPHEUS_ASSERT(hasNew(), "take() with no new completion");
    const Completion cqe = _ring[_head];
    _head = static_cast<std::uint16_t>((_head + 1) % _entries);
    if (_head == 0)
        _consumerPhase = !_consumerPhase;
    return cqe;
}

}  // namespace morpheus::nvme
