#include "nvme/controller.hh"

#include <algorithm>
#include <utility>

#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::nvme {

NvmeController::NvmeController(pcie::PcieSwitch &fabric,
                               pcie::PortId ssd_port,
                               const ControllerConfig &config)
    : _fabric(fabric), _port(ssd_port), _config(config)
{
    MORPHEUS_ASSERT(_config.maxTransferBlocks > 0, "MDTS of zero");
}

void
NvmeController::setHandler(CommandHandler handler)
{
    _handler = std::move(handler);
}

std::uint16_t
NvmeController::createQueuePair(std::uint16_t entries, pcie::Addr sq_base,
                                pcie::Addr cq_base)
{
    const auto qid = static_cast<std::uint16_t>(_queues.size() + 1);
    auto qp = std::make_unique<QueuePair>(QueuePair{
        qid, sq_base, cq_base, SubmissionQueue(entries),
        CompletionQueue(entries)});
    _queues.push_back(std::move(qp));
    return qid;
}

SubmissionQueue &
NvmeController::sq(std::uint16_t qid)
{
    MORPHEUS_ASSERT(qid >= 1 && qid <= _queues.size(), "bad qid ", qid);
    return _queues[qid - 1]->sq;
}

CompletionQueue &
NvmeController::cq(std::uint16_t qid)
{
    MORPHEUS_ASSERT(qid >= 1 && qid <= _queues.size(), "bad qid ", qid);
    return _queues[qid - 1]->cq;
}

Status
NvmeController::frontEndCheck(const Command &cmd) const
{
    switch (cmd.opcode) {
      case Opcode::kRead:
      case Opcode::kWrite:
      case Opcode::kMRead:
      case Opcode::kMWrite:
        if (cmd.numBlocks() > _config.maxTransferBlocks)
            return Status::kInvalidField;
        return Status::kSuccess;
      case Opcode::kFlush:
      case Opcode::kDsm:
      case Opcode::kMInit:
      case Opcode::kMDeinit:
        return Status::kSuccess;
    }
    return Status::kInvalidOpcode;
}

sim::Tick
NvmeController::ringDoorbell(std::uint16_t qid, sim::Tick now)
{
    MORPHEUS_ASSERT(_handler, "doorbell rung with no firmware handler");
    MORPHEUS_ASSERT(qid >= 1 && qid <= _queues.size(), "bad qid ", qid);
    QueuePair &qp = *_queues[qid - 1];
    ++_doorbells;

    // The doorbell is a 4-byte posted MMIO write into the controller's
    // register BAR: one downlink hop.
    sim::Tick cursor =
        _fabric.link(_port).sendToDevice(4, now);

    sim::Tick last_done = cursor;
    while (!qp.sq.empty()) {
        // Fetch the 64-byte SQE from host memory.
        const sim::Tick fetched =
            _fabric.dmaRead(_port, qp.sqBase, kCommandBytes, cursor);
        const Command cmd = qp.sq.pop();

        // Front-end decode/dispatch occupancy.
        const sim::Tick dispatched =
            _frontEnd.acquireUntil(fetched, _config.commandOverhead);

        CommandResult result;
        const Status fe = frontEndCheck(cmd);
        if (fe != Status::kSuccess) {
            result.done = dispatched;
            result.status = fe;
        } else {
            result = _handler(cmd, dispatched);
        }
        ++_commands;

        if (auto *sink = obs::traceSink()) {
            // Front-end decode/dispatch occupancy (acquireUntil returns
            // start + commandOverhead, so the begin tick is exact).
            obs::Span dispatch;
            dispatch.track = _trackPrefix + "nvme.frontend";
            dispatch.name = "dispatch";
            dispatch.category = "nvme";
            dispatch.begin = dispatched - _config.commandOverhead;
            dispatch.end = dispatched;
            dispatch.trace = cmd.traceId;
            sink->record(dispatch);
            if (result.done > dispatched) {
                // Umbrella over the firmware's handling of the command;
                // the device layers nest their own spans inside it.
                obs::Span exec;
                exec.track =
                    _trackPrefix + "nvme.exec[" + std::to_string(qid) + "]";
                exec.name = opcodeName(cmd.opcode);
                exec.category = "nvme";
                exec.begin = dispatched;
                exec.end = result.done;
                exec.trace = cmd.traceId;
                exec.instance = cmd.instanceId;
                exec.status = static_cast<std::uint32_t>(result.status);
                sink->record(exec);
            }
        }

        // Dropped-CQE fault: the command executed (and its side effects
        // stand) but the completion never reaches the host — either the
        // handler said so (watchdog-killed instance) or the injector
        // eats it here. The host driver's command timeout recovers.
        bool drop = result.dropped;
        if (!drop) {
            if (auto *fi = sim::faultInjector())
                drop = fi->dropCqe();
        }
        if (drop) {
            ++_cqesDropped;
            if (auto *sink = obs::traceSink()) {
                obs::Span d;
                d.track = _trackPrefix + "nvme.exec[" +
                          std::to_string(qid) + "]";
                d.name = "cqe_dropped";
                d.category = "nvme";
                d.begin = result.done;
                d.end = result.done;
                d.instant = true;
                d.trace = cmd.traceId;
                d.instance = cmd.instanceId;
                d.status = static_cast<std::uint32_t>(result.status);
                sink->record(d);
            }
            last_done = std::max(last_done, result.done);
            cursor = fetched;
            continue;
        }

        // Post the 16-byte CQE to host memory, then raise MSI-X.
        const sim::Tick posted = _fabric.dmaWrite(
            _port, qp.cqBase, kCompletionBytes, result.done);
        const sim::Tick irq = posted + _config.interruptLatency;
        ++_interrupts;

        Completion cqe;
        cqe.dw0 = result.dw0;
        cqe.sqHead = qp.sq.head();
        cqe.sqId = qid;
        cqe.cid = cmd.cid;
        cqe.status = result.status;
        cqe.postedAt = irq;
        qp.cq.post(cqe);

        last_done = std::max(last_done, irq);
        cursor = fetched;  // next fetch may overlap execution
    }
    return last_done;
}

void
NvmeController::registerStats(sim::stats::StatSet &set,
                              const std::string &prefix) const
{
    set.registerCounter(prefix + ".commands", &_commands);
    set.registerCounter(prefix + ".doorbells", &_doorbells);
    set.registerCounter(prefix + ".interrupts", &_interrupts);
    set.registerCounter(prefix + ".cqesDropped", &_cqesDropped);
}

}  // namespace morpheus::nvme
