/**
 * @file
 * Experiment harness: runs one benchmark application end-to-end on a
 * freshly built simulated system, in one of three execution modes:
 *
 *  - kBaseline:    conventional model (paper Fig 1) — the host CPU
 *                  read()s raw text and deserializes it;
 *  - kMorpheus:    Morpheus model (Fig 4) — StorageApps deserialize on
 *                  the SSD, objects DMA to host memory;
 *  - kMorpheusP2p: Morpheus + NVMe-P2P — objects DMA straight into GPU
 *                  device memory (GPU apps only; others fall back to
 *                  kMorpheus).
 *
 * Every run is functional: the produced objects are validated against
 * a direct parse of the input text, and the kernel checksum must match
 * across modes. The returned metrics carry everything Figs 2, 3, 8, 9,
 * 10 and the §VII traffic/end-to-end results are built from.
 */

#ifndef MORPHEUS_WORKLOADS_RUNNER_HH
#define MORPHEUS_WORKLOADS_RUNNER_HH

#include <cstdint>
#include <string>

#include "host/host_system.hh"
#include "nvme/driver.hh"
#include "obs/metrics.hh"
#include "sim/fault.hh"
#include "workloads/app_spec.hh"

namespace morpheus::workloads {

/** Execution mode under test. */
enum class ExecutionMode { kBaseline, kMorpheus, kMorpheusP2p };

/** Which device the baseline reads from (Fig 3). */
enum class BackendKind { kNvme, kHdd, kRamDrive };

/** Per-run knobs. */
struct RunOptions
{
    ExecutionMode mode = ExecutionMode::kBaseline;
    BackendKind backend = BackendKind::kNvme;  ///< Baseline only.
    double cpuFreqHz = 2.5e9;
    double scale = 1.0;
    std::uint64_t seed = 42;
    /** Morpheus MREAD chunk in 512 B blocks (0 = MDTS). */
    std::uint32_t chunkBlocks = 0;
    /** Fill RunMetrics::statsReport with the component counters. */
    bool collectStats = false;
    /** Optional federation target: runWorkload() snapshots the system
     *  StatSet ("sys.") and the phase breakdown ("run.") into it. */
    obs::MetricsRegistry *metrics = nullptr;
    /** System configuration overrides. */
    host::SystemConfig sys{};
    /** Fault plan installed around the measured phases (ingest runs
     *  clean). Inactive by default: bit-identical to a fault-free run. */
    sim::FaultPlan faults{};
    /** Driver-side recovery (timeouts + bounded retries). */
    nvme::DriverRecoveryConfig recovery{};
};

/** Everything measured in one run. */
struct RunMetrics
{
    // Phase wall times.
    sim::Tick deserTime = 0;
    sim::Tick gpuCopyTime = 0;
    sim::Tick kernelTime = 0;
    sim::Tick otherCpuTime = 0;
    sim::Tick totalTime = 0;

    // Deserialization-phase observables.
    std::uint64_t contextSwitchesDeser = 0;
    double contextSwitchesPerSec = 0.0;
    std::uint64_t pcieBytesDeser = 0;
    std::uint64_t membusBytesDeser = 0;
    double deserPowerWatts = 0.0;
    double deserEnergyJoules = 0.0;
    /** Host cores kept busy during deserialization (0..numCores). */
    double cpuBusyCoresDeser = 0.0;
    double effectiveBandwidthMBps = 0.0;  ///< Per I/O thread (Fig 3).

    // Whole-run observables.
    std::uint64_t pcieBytesTotal = 0;
    std::uint64_t membusBytesTotal = 0;
    std::uint64_t p2pBytes = 0;

    // Sizes.
    std::uint64_t rawTextBytes = 0;
    std::uint64_t objectBytesProduced = 0;

    // Functional outcome.
    std::uint64_t kernelChecksum = 0;
    bool validated = false;

    /** Component-counter dump (only when RunOptions::collectStats). */
    std::string statsReport;

    double deserSeconds() const { return sim::ticksToSeconds(deserTime); }
    double totalSeconds() const { return sim::ticksToSeconds(totalTime); }
};

/** Run @p app once under @p opts. */
RunMetrics runWorkload(const AppSpec &app, const RunOptions &opts);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_RUNNER_HH
