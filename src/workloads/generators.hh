/**
 * @file
 * Deterministic workload-input generators.
 *
 * Stand-ins for the BigDataBench/Rodinia input tools (which we do not
 * have): each generator builds the in-memory object first, then
 * text-serializes it, so every experiment knows its ground-truth
 * object. Values are integer-dominated (paper §VI-B selection
 * criterion) with a configurable floating-point fraction (SpMV's input
 * is ~33% floats).
 */

#ifndef MORPHEUS_WORKLOADS_GENERATORS_HH
#define MORPHEUS_WORKLOADS_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "serde/csv.hh"
#include "serde/formats.hh"
#include "serde/json.hh"

namespace morpheus::sim {
class Rng;
}

namespace morpheus::workloads {

/**
 * Zipfian popularity distribution over n items: item k (0-based) is
 * drawn with probability proportional to 1 / (k+1)^s. s = 0 degrades
 * to uniform; s ~ 0.99 is the classic YCSB hot-spot skew. The CDF is
 * precomputed at construction, and draw() consumes exactly one
 * uniform double from the caller's Rng — so inserting a Zipfian
 * choice into an existing request-generation loop shifts the stream
 * by a fixed, predictable number of draws.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint32_t n, double s);

    /** Draw one item index in [0, n). Consumes one rng.nextDouble(). */
    std::uint32_t draw(sim::Rng &rng) const;

    /**
     * The pure search behind draw(): map a uniform deviate u in [0, 1]
     * to an item index in [0, n). Float prefix sums can leave
     * cdf(n-1) < 1 before the constructor pins it; this function is
     * the single place the u == 1.0 and u > cdf(n-1) boundaries are
     * clamped, so tests can pin them without an Rng.
     */
    std::uint32_t indexForUniform(double u) const;

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(_cdf.size());
    }
    double skew() const { return _s; }

    /** P(item <= k), for tests and analytical checks. */
    double cdf(std::uint32_t k) const { return _cdf.at(k); }

  private:
    double _s;
    std::vector<double> _cdf;  ///< Inclusive prefix sums, back() == 1.
};

/**
 * Random directed graph with a skewed (preferential-attachment-style)
 * degree distribution.
 */
serde::EdgeListObject genEdgeList(std::uint64_t seed,
                                  std::uint32_t vertices,
                                  std::uint32_t edges, bool weighted);

/**
 * Dense square matrix, diagonally dominant (so Gaussian elimination
 * and LU decomposition are numerically stable). @p float_fraction of
 * the entries carry a fractional part; the rest are small integers.
 */
serde::MatrixObject genMatrix(std::uint64_t seed, std::uint32_t n,
                              double float_fraction = 0.0);

/** Uniform random 64-bit integers (bounded to keep text compact). */
serde::IntArrayObject genIntArray(std::uint64_t seed, std::uint32_t n);

/** Clustered points (Kmeans/NN-friendly). */
serde::PointSetObject genPointSet(std::uint64_t seed,
                                  std::uint32_t points,
                                  std::uint32_t dims,
                                  double float_fraction = 0.0);

/** Numeric CSV table with named columns (extension format). */
serde::CsvTableObject genCsvTable(std::uint64_t seed,
                                  std::uint32_t rows,
                                  std::uint32_t cols,
                                  double float_fraction = 0.25);

/** JSON record array with 1-12 values per record (extension format). */
serde::JsonRecordsObject genJsonRecords(std::uint64_t seed,
                                        std::uint32_t records,
                                        double float_fraction = 0.3);

/** Sparse matrix with ~nnz/rows entries per row, sorted by row. */
serde::CooMatrixObject genCooMatrix(std::uint64_t seed,
                                    std::uint32_t rows,
                                    std::uint32_t cols,
                                    std::uint32_t nnz,
                                    double float_fraction = 0.0);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_GENERATORS_HH
