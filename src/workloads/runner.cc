#include "workloads/runner.hh"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "sim/logging.hh"
#include "workloads/partition.hh"

namespace morpheus::workloads {

namespace {

/** Busy-tick totals used to derive per-phase component activity. */
struct ActivitySnapshot
{
    sim::Tick cpuBusy = 0;
    sim::Tick flashBusy = 0;
    sim::Tick ssdCoresBusy = 0;
    sim::Tick gpuBusy = 0;
    std::uint64_t fabricBytes = 0;
    std::uint64_t membusBytes = 0;
    std::uint64_t contextSwitches = 0;

    static ActivitySnapshot
    take(host::HostSystem &sys)
    {
        ActivitySnapshot s;
        for (unsigned c = 0; c < sys.cpu().config().cores; ++c)
            s.cpuBusy += sys.cpu().coreTimeline(c).busyTicks();
        const auto &fc = sys.ssd().flash().config();
        for (unsigned ch = 0; ch < fc.channels; ++ch) {
            for (unsigned d = 0; d < fc.diesPerChannel; ++d) {
                s.flashBusy +=
                    sys.ssd().flash().dieTimeline(ch, d).busyTicks();
            }
        }
        for (unsigned c = 0; c < sys.ssd().numCores(); ++c)
            s.ssdCoresBusy += sys.ssd().core(c).timeline().busyTicks();
        s.gpuBusy = sys.gpu().smTimeline().busyTicks();
        s.fabricBytes = sys.fabric().fabricBytes();
        s.membusBytes = sys.mem().busBytesTotal();
        s.contextSwitches = sys.os().contextSwitches();
        return s;
    }
};

/** The per-rank input files of one run. */
struct RankInput
{
    AnyObject object;                 ///< Ground truth shard.
    std::vector<std::uint8_t> text;   ///< Serialized shard.
    host::FileExtent extent;          ///< Where it lives on the device.
    std::uint64_t backendOffset = 0;  ///< Offset for HDD/RAM backends.
};

/** Baseline deserialization of one rank's file. @return finish tick. */
sim::Tick
baselineDeserRank(host::HostSystem &sys, host::StorageBackend &backend,
                  const AppSpec &app, const RankInput &input,
                  unsigned core, sim::Tick t0, std::uint64_t obj_bytes,
                  const serde::ParseCost &cost)
{
    host::OsModel &os = sys.os();
    host::HostCpu &cpu = sys.cpu();
    host::HostMemory &mem = sys.mem();

    // Raw staging buffer X and the object buffer Y (Fig 1(b)).
    const pcie::Addr buf_x = sys.allocHost(app.baselineChunkBytes);
    sys.allocHost(obj_bytes);  // buffer Y

    sim::Tick t = os.syscall(core, t0);  // open()
    // First-touch faults on the freshly allocated object buffer.
    sim::Tick cpu_cursor =
        os.pageFaults(core, os.faultsForBytes(obj_bytes), t);

    const std::uint64_t file_bytes = input.text.size();
    const double total_convert = cpu.convertCycles(cost);

    std::uint64_t offset = 0;
    while (offset < file_bytes) {
        const std::uint64_t len = std::min<std::uint64_t>(
            app.baselineChunkBytes, file_bytes - offset);
        // The kernel's readahead keeps a deep queue of requests at the
        // device: every chunk is issued eagerly and the device-side
        // resource timelines (flash dies, channels, PCIe link) do the
        // actual serialization, so sequential streams run at device
        // bandwidth, not one-request latency.
        const sim::Tick io_done = backend.read(
            input.backendOffset + offset, len, buf_x, t0);

        // read() syscall + FS work + blocking switch pair, then the
        // string-to-binary conversion itself (phase B).
        const sim::Tick ready = std::max(cpu_cursor, io_done);
        const sim::Tick fs_done =
            os.blockingReadOverhead(core, len, ready);
        const double convert =
            total_convert * static_cast<double>(len) /
            static_cast<double>(file_bytes);
        cpu_cursor = cpu.execute(core, convert, fs_done);

        // Memory traffic: raw into X (DMA, already counted by the
        // backend), raw out of X, objects into Y.
        const std::uint64_t obj_share =
            obj_bytes * len / file_bytes;
        mem.cpuAccess(len, obj_share, fs_done);
        offset += len;
    }
    return cpu_cursor;
}

/** Charge the (parallel) CPU kernel across the app's ranks. */
sim::Tick
cpuKernelPhase(host::HostSystem &sys, const AppSpec &app,
               const KernelWork &work, sim::Tick start)
{
    sim::Tick done = start;
    for (unsigned r = 0; r < app.ranks; ++r) {
        const sim::Tick t = sys.cpu().execute(
            r, work.cpuCycles / app.ranks, start);
        done = std::max(done, t);
    }
    sys.mem().cpuAccess(work.hostMemBytes, work.hostMemBytes / 4,
                        start);
    return done;
}

}  // namespace

RunMetrics
runWorkload(const AppSpec &app, const RunOptions &opts)
{
    host::HostSystem sys(opts.sys);
    sys.cpu().setFreqHz(opts.cpuFreqHz);
    sys.nvmeDriver().setRecovery(opts.recovery);

    const bool gpu_app = app.isGpuApp();
    const bool p2p = opts.mode == ExecutionMode::kMorpheusP2p && gpu_app;
    const unsigned ranks =
        app.parallel == ParallelModel::kMpi ? app.ranks : 1;

    // ---------------- setup: generate + partition + ingest -----------
    const AnyObject truth = app.generate(opts.seed, opts.scale);
    std::vector<AnyObject> shards = partitionObject(truth, ranks);

    std::unique_ptr<host::StorageBackend> alt_backend;
    host::StorageBackend *backend = &sys.ssdBackend();
    if (opts.mode == ExecutionMode::kBaseline) {
        if (opts.backend == BackendKind::kHdd)
            alt_backend = std::make_unique<host::HddBackend>(sys.mem());
        else if (opts.backend == BackendKind::kRamDrive)
            alt_backend =
                std::make_unique<host::RamDriveBackend>(sys.mem());
        if (alt_backend)
            backend = alt_backend.get();
    }

    std::vector<RankInput> inputs(ranks);
    sim::Tick ingest_done = 0;
    std::uint64_t raw_total = 0;
    std::uint64_t backend_cursor = 0;
    for (unsigned r = 0; r < ranks; ++r) {
        inputs[r].object = std::move(shards[r]);
        inputs[r].text = serializeObject(inputs[r].object);
        raw_total += inputs[r].text.size();
        if (backend == &sys.ssdBackend()) {
            inputs[r].extent = sys.createFile(
                app.name + ".part" + std::to_string(r),
                inputs[r].text);
            inputs[r].backendOffset = inputs[r].extent.startByte;
            ingest_done =
                std::max(ingest_done, inputs[r].extent.readyAt);
        } else {
            inputs[r].backendOffset = backend_cursor;
            ingest_done = std::max(
                ingest_done,
                backend->ingest(backend_cursor, inputs[r].text));
            backend_cursor +=
                (inputs[r].text.size() + 4095) & ~std::uint64_t(4095);
        }
    }

    // Reference parse (functional only; also the per-rank parse cost
    // the baseline timing uses).
    std::vector<AnyObject> parsed_ref(ranks);
    std::vector<serde::ParseCost> costs(ranks);
    std::vector<std::uint64_t> obj_sizes(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
        parsed_ref[r] =
            parseObject(app.object, inputs[r].text.data(),
                        inputs[r].text.size(), &costs[r]);
        obj_sizes[r] = objectBytes(parsed_ref[r]);
    }
    const AnyObject reference = mergeObjects(app.object, parsed_ref);
    const std::uint64_t obj_total = objectBytes(reference);

    // ---------------- measured phases --------------------------------
    // Faults fire only during the measured phases, never at ingest.
    // The injector stays installed through metrics federation so
    // sys.faults.* gets snapshotted; an inactive plan installs nothing.
    std::optional<sim::FaultInjector> fault_injector;
    std::optional<sim::ScopedFaultInjector> fault_scope;
    if (opts.faults.active()) {
        fault_injector.emplace(opts.faults);
        fault_scope.emplace(&*fault_injector);
    }

    const sim::Tick t0 = ingest_done;
    const ActivitySnapshot before = ActivitySnapshot::take(sys);

    RunMetrics m;
    m.rawTextBytes = raw_total;

    core::StandardImages images = core::StandardImages::make();
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p_module(sys);
    core::MorpheusRuntime runtime(sys, device, p2p_module);

    AnyObject produced;       // object the measured path yielded
    sim::Tick deser_done = t0;
    std::vector<std::uint64_t> gpu_dev_addrs(ranks, 0);

    if (opts.mode == ExecutionMode::kBaseline) {
        for (unsigned r = 0; r < ranks; ++r) {
            const sim::Tick t = baselineDeserRank(
                sys, *backend, app, inputs[r], r, t0, obj_sizes[r],
                costs[r]);
            deser_done = std::max(deser_done, t);
        }
        produced = reference;  // the CPU parse is the reference parse
    } else {
        const core::StorageAppImage &image =
            imageFor(app.object, images);
        std::vector<core::DmaTarget> targets(ranks);
        std::vector<core::InvokeResult> results(ranks);
        for (unsigned r = 0; r < ranks; ++r) {
            if (p2p) {
                targets[r] =
                    runtime.gpuTarget(obj_sizes[r], &gpu_dev_addrs[r]);
            } else {
                targets[r] = runtime.hostTarget(obj_sizes[r]);
            }
            core::InvokeOptions iopts;
            iopts.hostCore = r % sys.cpu().config().cores;
            iopts.arg = appArgFor(app.object);
            iopts.chunkBlocks = opts.chunkBlocks;
            const core::MsStream stream =
                runtime.streamCreate(inputs[r].extent, t0, iopts.hostCore);
            results[r] =
                runtime.invoke(image, stream, targets[r], t0, iopts);
            // With recovery enabled an invocation can die on an
            // injected fault (crashed app, watchdog kill). Replay it
            // whole: the fresh instance restreams from byte 0,
            // overwriting any partial delivery. Bounded so a rate-1.0
            // plan can't loop forever.
            for (unsigned replay = 0;
                 (results[r].failed || !results[r].accepted) &&
                 opts.recovery.enabled && replay < 8;
                 ++replay) {
                const sim::Tick at = results[r].done;
                const core::MsStream again = runtime.streamCreate(
                    inputs[r].extent, at, iopts.hostCore);
                results[r] =
                    runtime.invoke(image, again, targets[r], at, iopts);
            }
            MORPHEUS_ASSERT(
                results[r].accepted && !results[r].failed,
                "invocation failed beyond recovery: app=", app.name,
                " rank=", r);
            deser_done = std::max(deser_done, results[r].done);
        }
        // Reconstruct the produced objects from the DMA destinations.
        std::vector<AnyObject> produced_shards(ranks);
        for (unsigned r = 0; r < ranks; ++r) {
            std::vector<std::uint8_t> bin;
            if (p2p) {
                bin = sys.gpu().mem().readVec(
                    gpu_dev_addrs[r],
                    static_cast<std::size_t>(obj_sizes[r]));
            } else {
                bin = sys.mem().store().readVec(
                    targets[r].addr,
                    static_cast<std::size_t>(obj_sizes[r]));
            }
            produced_shards[r] = objectFromBinary(app.object, bin);
        }
        produced = mergeObjects(app.object, produced_shards);
    }

    m.deserTime = deser_done - t0;
    const ActivitySnapshot after_deser = ActivitySnapshot::take(sys);

    // -------- deser-phase derived metrics ----------------------------
    m.contextSwitchesDeser =
        after_deser.contextSwitches - before.contextSwitches;
    m.contextSwitchesPerSec =
        m.deserTime
            ? static_cast<double>(m.contextSwitchesDeser) /
                  sim::ticksToSeconds(m.deserTime)
            : 0.0;
    m.pcieBytesDeser = after_deser.fabricBytes - before.fabricBytes;
    m.membusBytesDeser = after_deser.membusBytes - before.membusBytes;
    m.objectBytesProduced = obj_total;
    m.effectiveBandwidthMBps =
        m.deserTime
            ? static_cast<double>(obj_total) / ranks /
                  sim::ticksToSeconds(m.deserTime) / 1e6
            : 0.0;

    {
        const double dur = static_cast<double>(m.deserTime);
        host::PhaseActivity act;
        if (dur > 0) {
            const double cpu_busy = static_cast<double>(
                after_deser.cpuBusy - before.cpuBusy);
            const double flash_busy = static_cast<double>(
                after_deser.flashBusy - before.flashBusy);
            const double cores_busy = static_cast<double>(
                after_deser.ssdCoresBusy - before.ssdCoresBusy);
            act.cpuCoresParsing = cpu_busy / dur;
            m.cpuBusyCoresDeser = act.cpuCoresParsing;
            act.ssdIoActive = std::min(
                1.0, flash_busy /
                         (dur * sys.ssd().flash().config().dies()));
            act.ssdCoresActive = cores_busy / dur;
            act.hddActive =
                opts.backend == BackendKind::kHdd ? 1.0 : 0.0;
            act.dramStreaming = std::min(
                1.0, static_cast<double>(m.membusBytesDeser) /
                         (sys.mem().config().bytesPerSec *
                          sim::ticksToSeconds(m.deserTime)));
        }
        m.deserPowerWatts = sys.power().systemWatts(act);
        m.deserEnergyJoules =
            sys.power().energyJoules(act, m.deserTime);
    }

    // ---------------- kernel (+ copy) phases --------------------------
    const KernelResult kres = app.kernel(produced);
    m.kernelChecksum = kres.checksum;

    sim::Tick phase_cursor = deser_done;
    if (gpu_app) {
        if (!p2p) {
            // cudaMemcpy H2D of the object buffer.
            const auto bin = objectToBinary(produced);
            const std::uint64_t dev = sys.gpu().alloc(bin.size());
            const pcie::Addr host_buf = sys.allocHost(bin.size());
            sys.mem().store().writeVec(host_buf, bin);
            const sim::Tick copy_done = sys.gpu().copyFromHost(
                host_buf, dev, bin.data(), bin.size(), phase_cursor);
            m.gpuCopyTime = copy_done - phase_cursor;
            phase_cursor = copy_done;
        }
        const sim::Tick k_done = sys.gpu().kernel(
            kres.work.gpuFlop, kres.work.gpuMemBytes, phase_cursor);
        m.kernelTime = k_done - phase_cursor;
        phase_cursor = k_done;
    } else {
        const sim::Tick k_done =
            cpuKernelPhase(sys, app, kres.work, phase_cursor);
        m.kernelTime = k_done - phase_cursor;
        phase_cursor = k_done;
    }

    // "Other CPU computation": result handling, allocation, MPI glue.
    // Scales with the data volume handled, i.e. with the
    // deserialization phase.
    const double other_cycles =
        app.otherCpuFraction * sim::ticksToSeconds(m.deserTime) *
        sys.cpu().freqHz();
    const sim::Tick other_done =
        sys.cpu().execute(0, other_cycles, phase_cursor);
    m.otherCpuTime = other_done - phase_cursor;
    m.totalTime = other_done - t0;

    const ActivitySnapshot at_end = ActivitySnapshot::take(sys);
    m.pcieBytesTotal = at_end.fabricBytes - before.fabricBytes;
    m.membusBytesTotal = at_end.membusBytes - before.membusBytes;
    m.p2pBytes = sys.fabric().p2pBytes();

    // ---------------- validation --------------------------------------
    const KernelResult ref_kernel = app.kernel(reference);
    m.validated = objectsEqual(produced, reference) &&
                  ref_kernel.checksum == kres.checksum;

    if (opts.collectStats || opts.metrics != nullptr) {
        sim::stats::StatSet set;
        sys.registerStats(set);
        device.registerStats(set, "morpheus");
        if (opts.collectStats) {
            std::ostringstream os;
            set.report(os);
            m.statsReport = os.str();
        }
        if (opts.metrics != nullptr) {
            obs::MetricsRegistry &reg = *opts.metrics;
            reg.absorb(set, "sys.");
            reg.setCounter("run.deser_ticks", m.deserTime);
            reg.setCounter("run.gpu_copy_ticks", m.gpuCopyTime);
            reg.setCounter("run.kernel_ticks", m.kernelTime);
            reg.setCounter("run.other_cpu_ticks", m.otherCpuTime);
            reg.setCounter("run.total_ticks", m.totalTime);
            reg.setCounter("run.pcie_bytes_deser", m.pcieBytesDeser);
            reg.setCounter("run.membus_bytes_deser", m.membusBytesDeser);
            reg.setCounter("run.pcie_bytes_total", m.pcieBytesTotal);
            reg.setCounter("run.membus_bytes_total", m.membusBytesTotal);
            reg.setCounter("run.p2p_bytes", m.p2pBytes);
            reg.setCounter("run.raw_text_bytes", m.rawTextBytes);
            reg.setCounter("run.object_bytes", m.objectBytesProduced);
            reg.setCounter("run.validated", m.validated ? 1 : 0);
            reg.setCounter("run.retries",
                           sys.nvmeDriver().retriesIssued());
            reg.setCounter("run.timeouts",
                           sys.nvmeDriver().timeoutsSynthesized());
            reg.setScalar("run.deser_power_watts", m.deserPowerWatts);
            reg.setScalar("run.deser_energy_joules",
                          m.deserEnergyJoules);
        }
    }
    return m;
}

}  // namespace morpheus::workloads
