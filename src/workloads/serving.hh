/**
 * @file
 * Open-loop multi-tenant serving driver.
 *
 * Where runner.hh measures one invocation end-to-end, this driver
 * subjects the device to *traffic*: several tenants submit StorageApp
 * requests at Poisson (or bursty on/off) arrival times, independent of
 * completions — the open-loop discipline of serving benchmarks, so
 * queueing delay shows up in the measured latency instead of being
 * absorbed by a closed loop's self-throttling. A closed-loop mode
 * (ServingOptions::closedLoop) provides that complementary discipline
 * explicitly: fixed per-tenant concurrency, next request issued on
 * completion, for throughput-vs-latency saturation sweeps.
 *
 * Each request is one invocation of the int-array deserializer over a
 * pre-ingested file drawn from a heavy-tailed size mix. Requests are
 * interleaved at MREAD-batch granularity through the InvokeSession
 * API; the device-side scheduler (ssd.sched in the SystemConfig)
 * decides placement, admission, and pacing. The report carries
 * per-tenant latency percentiles (sim::stats::Histogram) and the Jain
 * fairness index over weight-normalized served bytes.
 */

#ifndef MORPHEUS_WORKLOADS_SERVING_HH
#define MORPHEUS_WORKLOADS_SERVING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "host/system_config.hh"
#include "nvme/driver.hh"
#include "obs/critical_path.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sched/hybrid_policy.hh"
#include "shard/shard_router.hh"
#include "sim/fault.hh"

namespace morpheus::workloads {

/** Object format a tenant's requests deserialize (and which applet
 *  runs on the device for them). */
enum class TenantFormat : std::uint8_t {
    kIntArray = 0,  ///< Classic int-array text deserializer.
    kCsv,           ///< CSV-to-columns applet.
    kJson,          ///< JSON record-array applet.
    kColumnar,      ///< Columnar scan applet (projection + predicate
                    ///< pushdown when TenantSpec::pushdown is set).
};

/** "intarray" / "csv" / "json" / "columnar". */
const char *tenantFormatName(TenantFormat f);
/** Inverse of tenantFormatName(); @return false on junk. */
bool tenantFormatFromName(const std::string &name, TenantFormat *out);

/** One traffic source. */
struct TenantSpec
{
    std::uint32_t id = 0;
    /** Relative service weight (DRR share). */
    double weight = 1.0;
    /** Mean request arrival rate (open loop). */
    double arrivalsPerSec = 2000.0;
    /** Request size classes, in int-array values per request (rows
     *  for kCsv/kColumnar, records for kJson)... */
    std::vector<std::uint32_t> sizeClassValues{2000, 8000, 32000};
    /** ...and their draw probabilities (normalized internally). */
    std::vector<double> sizeClassProb{0.70, 0.25, 0.05};
    /** Per-tenant SLO latency target in microseconds; 0 inherits
     *  SloOptions::targetUs (latency classes: an interactive tenant
     *  can carry a tighter target than a batch one). */
    double sloTargetUs = 0.0;

    /** Object format of this tenant's requests. The default keeps the
     *  classic all-int-array mix (and its Rng draw sequence)
     *  bit-identical to pre-format builds. */
    TenantFormat format = TenantFormat::kIntArray;
    /** Columnar tenants: fraction of rows the predicate keeps
     *  (1.0 = no predicate). */
    double selectivity = 1.0;
    /** Columnar tenants: leading columns projected (0 = all). */
    unsigned projectColumns = 0;
    /** Columnar tenants: total table columns. */
    unsigned tableColumns = 6;
    /** Columnar tenants: evaluate the scan on the device (MINIT
     *  pushdown descriptor). False ships the full table — the
     *  full-object baseline a pushdown tenant is compared against. */
    bool pushdown = true;
    /** Fraction of requests that are MWRITE serializations (the host
     *  streams binary values through the on-device serializer) instead
     *  of reads. 0 (the default) draws nothing extra from the Rng. */
    double writeFraction = 0.0;
};

/** Per-tenant latency-SLO tracking (burn-rate accounting). */
struct SloOptions
{
    bool enabled = false;
    /** Default latency target (µs) for tenants without their own. */
    double targetUs = 2000.0;
    /** Fraction of requests that must meet the target (e.g. 0.99). */
    double objective = 0.99;
    /** Burn-rate window in simulated microseconds (the "minute" of
     *  good/bad-minute accounting, scaled to sim horizons). */
    double windowUs = 5000.0;
};

/** Serving-experiment knobs. */
struct ServingOptions
{
    std::vector<TenantSpec> tenants;
    /** Arrivals are generated in [0, durationSec). */
    double durationSec = 0.02;
    std::uint64_t seed = 1;

    /**
     * Closed-loop mode: instead of the open-loop Poisson trace, each
     * tenant keeps a fixed number of requests in flight and issues the
     * next one the moment one finishes — the self-throttling
     * throughput-vs-latency discipline of closed-loop load generators
     * (queueing never builds beyond the concurrency, so the report's
     * throughputPerSec and percentiles trace the saturation curve as
     * closedLoopConcurrency sweeps). durationSec is ignored; every
     * tenant issues exactly closedLoopRequests requests.
     */
    bool closedLoop = false;
    /** Requests each tenant keeps in flight (closed loop). */
    unsigned closedLoopConcurrency = 4;
    /** Requests each tenant issues in total (closed loop). */
    std::uint64_t closedLoopRequests = 64;

    /** On/off burst modulation instead of plain Poisson (open loop). */
    bool bursty = false;
    double burstFactor = 4.0;      ///< Rate multiplier inside a burst.
    double burstOnFraction = 0.25; ///< Fraction of time bursting.
    double burstPeriodSec = 2e-3;  ///< One on+off cycle.

    /** MREAD chunk in 512 B blocks (0 = MDTS). */
    std::uint32_t chunkBlocks = 0;
    /** Staging flush threshold forwarded to each invocation (0 = the
     *  device default: granted D-SRAM / 4). With dsramPartitioning a
     *  threshold equal to the grant flushes at grant-full, keeping the
     *  unpartitioned flush cadence while the budget is enforced. */
    std::uint32_t flushThreshold = 0;
    /** Platform, including ssd.sched (the policies under test) and
     *  sys.numSsds (> 1 turns on fleet serving). */
    host::SystemConfig sys{};

    /**
     * Fleet serving: distinct object files per (tenant, size class),
     * placed across the SSDs by shardPolicy. 1 (the default) keeps the
     * classic one-object-per-class request stream — and the Rng draw
     * sequence — bit-identical to pre-fleet runs.
     */
    unsigned objectsPerClass = 1;

    /** Zipfian skew of per-class object popularity (0 = uniform); with
     *  hashed placement a skewed object mix concentrates load on the
     *  shards owning the hot objects. Ignored if objectsPerClass <= 1. */
    double zipfSkew = 0.0;

    /** Placement of object files across the fleet (sys.numSsds > 1). */
    shard::ShardPolicy shardPolicy = shard::ShardPolicy::kHash;

    /**
     * Fault-injection plan, installed (scoped) around the measured
     * event loop only — ingest always runs clean. An inactive plan
     * (all rates zero, the default) installs nothing and leaves the
     * run bit-identical to a fault-free build.
     */
    sim::FaultPlan faults{};

    /** Driver-side recovery: per-command timeouts, bounded retries
     *  with backoff/retry-after, watchdog-abort synthesis. Disabled by
     *  default (faults then assert, as before). */
    nvme::DriverRecoveryConfig recovery{};

    /**
     * Per-tenant circuit breaker: after this many consecutive
     * device-path failures the tenant's requests are served by the
     * baseline host-read + host-deserialize path until a half-open
     * probe succeeds. 0 disables the breaker AND the per-request
     * fallback — failed requests are simply lost (the recovery-off
     * ablation).
     */
    unsigned breakerThreshold = 3;

    /** While open, every Nth request is a half-open probe down the
     *  device path; success closes the breaker. */
    unsigned breakerProbeEvery = 8;

    /**
     * Overload-aware hybrid execution (sched::HybridPlacementPolicy):
     * per request, choose the embedded core, the host CPU, or a split
     * of the two by live device pressure vs. modeled host backlog,
     * with hysteresis and an optional shed valve. Off by default —
     * disabled runs are bit-identical to pre-hybrid builds. The
     * breaker always outranks it: a breaker-open tenant is host-routed
     * (reason "breaker"), never double-routed by overload.
     */
    sched::HybridConfig hybrid{};

    /**
     * Optional federation target. When set, runServing() snapshots the
     * whole system StatSet (under "sys.") plus per-tenant serving
     * outcomes (under "serving.") into it before the simulated machine
     * is torn down.
     */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Tail-based flight recorder. When set, runServing() attaches it
     * as the trace sink around the measured event loop (tee-ing to its
     * configured downstream, so an already-attached full-trace sink
     * still sees everything), collects each request's spans at its
     * terminal outcome, and offers them for slowest-K / failed
     * retention. Purely observational: sim results stay bit-identical.
     */
    obs::FlightRecorder *flightRecorder = nullptr;

    /**
     * Critical-path attribution: decompose each completed request's
     * latency into pipeline stages and report per-tenant stage
     * breakdowns. Needs span data; when no flightRecorder is given, a
     * private recorder is attached for the duration of the run.
     */
    bool breakdown = false;

    /**
     * Time-series telemetry. When set, the event loop samples gauges
     * (in-flight, backlog bytes, D-SRAM occupancy, cache hits, fault
     * and retry counters, per-tenant throughput) into it on the
     * timeline's simulated-time cadence. runServing() defines the
     * columns and starts the cadence at the first arrival.
     */
    obs::Timeline *timeline = nullptr;

    /** Per-tenant latency-SLO burn tracking (see SloOptions). */
    SloOptions slo{};
};

/** Per-tenant outcome. */
struct TenantReport
{
    std::uint32_t id = 0;
    double weight = 1.0;
    /** Object format the tenant's requests used. */
    TenantFormat format = TenantFormat::kIntArray;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;   ///< Terminal admission refusals.
    std::uint64_t retries = 0;    ///< Bounced-and-reparked attempts.
    /** Retries whose MINIT bounced for lack of D-SRAM budget. */
    std::uint64_t dsramBounces = 0;
    /** Device-path invocations that died on an injected fault. */
    std::uint64_t deviceFailures = 0;
    /** Requests completed by the baseline host path (circuit breaker
     *  open, or per-request rescue after a device failure), equal to
     *  fallbackBreaker + fallbackOverload + fallbackProbe. */
    std::uint64_t fallbacks = 0;
    /** ...split by trigger: breaker-open routing and post-failure
     *  rescues; hybrid overload spill; failed half-open probes. */
    std::uint64_t fallbackBreaker = 0;
    std::uint64_t fallbackOverload = 0;
    std::uint64_t fallbackProbe = 0;
    /** Requests served by the split path (device prefix + host
     *  remainder, hybrid only; not counted in fallbacks). */
    std::uint64_t splitRequests = 0;
    /** MINITs bounced by the device's admission-level overload valve
     *  (SchedConfig::overloadBacklogLimit). */
    std::uint64_t overloadBounces = 0;
    /** Hybrid shed-valve bounces (retry-after re-submissions). */
    std::uint64_t shedBounces = 0;
    /** Requests terminally rejected by the shed valve (counted in
     *  rejected as well). */
    std::uint64_t shedRejected = 0;
    /** Requests neither completed nor terminally rejected (recovery
     *  and fallback both off while faults fire). */
    std::uint64_t lost = 0;
    /** Device-path completions answered by the object cache. */
    std::uint64_t cacheHits = 0;
    /** cacheHits / completed (0 when nothing completed). */
    double cacheHitRate = 0.0;
    std::uint64_t servedBytes = 0;
    /** Completed MWRITE (serialization) requests and the binary bytes
     *  they streamed host -> device (a subset of completed /
     *  servedBytes). */
    std::uint64_t writes = 0;
    std::uint64_t writeBytes = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;

    // --- critical-path breakdown (opts.breakdown) --------------------
    /** Completed requests with a span-derived stage decomposition. */
    std::uint64_t attributed = 0;
    /** Mean µs per stage over attributed requests (index by
     *  obs::Stage; sums to ~meanUs). */
    std::array<double, obs::kNumStages> stageMeanUs{};
    /** Stage decomposition of the p99-ranked attributed request —
     *  sums exactly to that request's latency, i.e. to p99Us within
     *  the histogram's bucket error. */
    std::array<double, obs::kNumStages> stageP99Us{};

    // --- SLO burn tracking (opts.slo.enabled) ------------------------
    double sloTargetUs = 0.0;     ///< Effective target for this tenant.
    std::uint64_t sloViolations = 0;  ///< Completions over the target.
    std::uint64_t sloGoodWindows = 0;
    std::uint64_t sloBadWindows = 0;  ///< Violation fraction > budget.
    /** (violations/completed) / (1 - objective); > 1 burns error
     *  budget faster than the objective allows. */
    double sloBurnRate = 0.0;
};

/** Per-device outcome of a fleet run (sys.numSsds > 1). */
struct ShardReport
{
    unsigned device = 0;
    std::uint64_t requests = 0;   ///< Device-path requests routed here.
    std::uint64_t completed = 0;  ///< ...that completed on the device.
    std::uint64_t servedBytes = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
};

/** Whole-experiment outcome. */
struct ServingReport
{
    std::vector<TenantReport> tenants;
    /** One entry per SSD in fleet runs; empty for single-SSD runs. */
    std::vector<ShardReport> shards;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deviceFailures = 0;
    std::uint64_t fallbacks = 0;
    /** fallbacks split by trigger (sums to fallbacks). */
    std::uint64_t fallbackBreaker = 0;
    std::uint64_t fallbackOverload = 0;
    std::uint64_t fallbackProbe = 0;
    /** Hybrid execution outcome counters (all zero when disabled). */
    std::uint64_t splitRequests = 0;
    std::uint64_t overloadBounces = 0;
    std::uint64_t shedBounces = 0;
    std::uint64_t shedRejected = 0;
    /** Placement decisions the hybrid policy handed out, indexed by
     *  sched::ExecPlacement. */
    std::array<std::uint64_t, sched::kNumPlacements> hybridDecisions{};
    /** Spill-mode transitions (hysteresis flips). */
    std::uint64_t hybridFlips = 0;
    std::uint64_t lost = 0;
    /** Completed MWRITE requests / streamed bytes (all tenants). */
    std::uint64_t writes = 0;
    std::uint64_t writeBytes = 0;
    /** Completions served from the device object cache (all tenants). */
    std::uint64_t cacheHits = 0;
    /** Host-side driver recovery activity during the run. */
    std::uint64_t driverRetries = 0;
    std::uint64_t driverTimeouts = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
    /** Jain index over servedBytes/weight (1.0 = perfectly fair). */
    double jainFairness = 0.0;
    double throughputPerSec = 0.0;
    sim::Tick makespan = 0;
    std::uint64_t migrations = 0;
    std::uint64_t drrDelays = 0;

    /** All-tenant critical-path breakdown (opts.breakdown). */
    std::uint64_t attributed = 0;
    std::array<double, obs::kNumStages> stageMeanUs{};
    /** Decomposition of the overall p99-ranked attributed request. */
    std::array<double, obs::kNumStages> stageP99Us{};
    /** Fleet runs: device whose shard p99 is worst (0 otherwise). */
    unsigned stragglerShard = 0;
};

/** Run one serving experiment — open-loop Poisson by default,
 *  fixed-concurrency closed loop with ServingOptions::closedLoop.
 *  Deterministic in the seed. */
ServingReport runServing(const ServingOptions &opts);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_SERVING_HH
