#include "workloads/partition.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace morpheus::workloads {

namespace {

/** Contiguous [begin, end) ranges splitting @p total into @p parts. */
std::vector<std::pair<std::size_t, std::size_t>>
shards(std::size_t total, unsigned parts)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    const std::size_t base = total / parts;
    std::size_t extra = total % parts;
    std::size_t pos = 0;
    for (unsigned i = 0; i < parts; ++i) {
        std::size_t len = base + (extra > 0 ? 1 : 0);
        if (extra > 0)
            --extra;
        out.emplace_back(pos, pos + len);
        pos += len;
    }
    return out;
}

}  // namespace

std::vector<AnyObject>
partitionObject(const AnyObject &obj, unsigned parts)
{
    MORPHEUS_ASSERT(parts >= 1, "partition into zero parts");
    std::vector<AnyObject> out;
    out.reserve(parts);

    if (const auto *g = std::get_if<serde::EdgeListObject>(&obj)) {
        for (const auto &[b, e] : shards(g->numEdges(), parts)) {
            serde::EdgeListObject s;
            s.numVertices = g->numVertices;
            s.weighted = g->weighted;
            s.src.assign(g->src.begin() + b, g->src.begin() + e);
            s.dst.assign(g->dst.begin() + b, g->dst.begin() + e);
            if (g->weighted) {
                s.weight.assign(g->weight.begin() + b,
                                g->weight.begin() + e);
            }
            out.emplace_back(std::move(s));
        }
    } else if (const auto *m = std::get_if<serde::MatrixObject>(&obj)) {
        for (const auto &[b, e] : shards(m->rows, parts)) {
            serde::MatrixObject s;
            s.rows = static_cast<std::uint32_t>(e - b);
            s.cols = m->cols;
            s.values.assign(m->values.begin() + b * m->cols,
                            m->values.begin() + e * m->cols);
            out.emplace_back(std::move(s));
        }
    } else if (const auto *a =
                   std::get_if<serde::IntArrayObject>(&obj)) {
        for (const auto &[b, e] : shards(a->values.size(), parts)) {
            serde::IntArrayObject s;
            s.values.assign(a->values.begin() + b,
                            a->values.begin() + e);
            out.emplace_back(std::move(s));
        }
    } else if (const auto *p =
                   std::get_if<serde::PointSetObject>(&obj)) {
        for (const auto &[b, e] : shards(p->numPoints(), parts)) {
            serde::PointSetObject s;
            s.dims = p->dims;
            s.coords.assign(p->coords.begin() + b * p->dims,
                            p->coords.begin() + e * p->dims);
            out.emplace_back(std::move(s));
        }
    } else if (const auto *c =
                   std::get_if<serde::CooMatrixObject>(&obj)) {
        for (const auto &[b, e] : shards(c->nnz(), parts)) {
            serde::CooMatrixObject s;
            s.rows = c->rows;
            s.cols = c->cols;
            s.rowIdx.assign(c->rowIdx.begin() + b, c->rowIdx.begin() + e);
            s.colIdx.assign(c->colIdx.begin() + b, c->colIdx.begin() + e);
            s.values.assign(c->values.begin() + b, c->values.begin() + e);
            out.emplace_back(std::move(s));
        }
    } else if (const auto *t =
                   std::get_if<serde::CsvTableObject>(&obj)) {
        const std::size_t cols = t->columns.size();
        for (const auto &[b, e] : shards(t->numRows(), parts)) {
            serde::CsvTableObject s;
            s.columns = t->columns;
            s.values.assign(t->values.begin() + b * cols,
                            t->values.begin() + e * cols);
            out.emplace_back(std::move(s));
        }
    } else if (const auto *j =
                   std::get_if<serde::JsonRecordsObject>(&obj)) {
        for (const auto &[b, e] : shards(j->numRecords(), parts)) {
            serde::JsonRecordsObject s;
            for (std::size_t r = b; r < e; ++r) {
                for (std::uint32_t i = j->recordOffsets[r];
                     i < j->recordOffsets[r + 1]; ++i) {
                    s.values.push_back(j->values[i]);
                }
                s.recordOffsets.push_back(
                    static_cast<std::uint32_t>(s.values.size()));
            }
            out.emplace_back(std::move(s));
        }
    } else {
        MORPHEUS_PANIC("unknown object variant");
    }
    return out;
}

AnyObject
mergeObjects(ObjectKind kind, const std::vector<AnyObject> &parts)
{
    MORPHEUS_ASSERT(!parts.empty(), "merging zero shards");
    switch (kind) {
      case ObjectKind::kEdgeList:
      case ObjectKind::kEdgeListWeighted: {
        serde::EdgeListObject out;
        const auto &first = std::get<serde::EdgeListObject>(parts[0]);
        out.numVertices = first.numVertices;
        out.weighted = first.weighted;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::EdgeListObject>(p);
            out.src.insert(out.src.end(), s.src.begin(), s.src.end());
            out.dst.insert(out.dst.end(), s.dst.begin(), s.dst.end());
            out.weight.insert(out.weight.end(), s.weight.begin(),
                              s.weight.end());
        }
        return out;
      }
      case ObjectKind::kMatrix: {
        serde::MatrixObject out;
        out.cols = std::get<serde::MatrixObject>(parts[0]).cols;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::MatrixObject>(p);
            out.rows += s.rows;
            out.values.insert(out.values.end(), s.values.begin(),
                              s.values.end());
        }
        return out;
      }
      case ObjectKind::kIntArray: {
        serde::IntArrayObject out;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::IntArrayObject>(p);
            out.values.insert(out.values.end(), s.values.begin(),
                              s.values.end());
        }
        return out;
      }
      case ObjectKind::kPointSet: {
        serde::PointSetObject out;
        out.dims = std::get<serde::PointSetObject>(parts[0]).dims;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::PointSetObject>(p);
            out.coords.insert(out.coords.end(), s.coords.begin(),
                              s.coords.end());
        }
        return out;
      }
      case ObjectKind::kCsvTable: {
        serde::CsvTableObject out;
        out.columns =
            std::get<serde::CsvTableObject>(parts[0]).columns;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::CsvTableObject>(p);
            out.values.insert(out.values.end(), s.values.begin(),
                              s.values.end());
        }
        return out;
      }
      case ObjectKind::kJsonRecords: {
        serde::JsonRecordsObject out;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::JsonRecordsObject>(p);
            for (std::size_t r = 0; r < s.numRecords(); ++r) {
                for (std::uint32_t i = s.recordOffsets[r];
                     i < s.recordOffsets[r + 1]; ++i) {
                    out.values.push_back(s.values[i]);
                }
                out.recordOffsets.push_back(
                    static_cast<std::uint32_t>(out.values.size()));
            }
        }
        return out;
      }
      case ObjectKind::kCooMatrix: {
        serde::CooMatrixObject out;
        const auto &first = std::get<serde::CooMatrixObject>(parts[0]);
        out.rows = first.rows;
        out.cols = first.cols;
        for (const auto &p : parts) {
            const auto &s = std::get<serde::CooMatrixObject>(p);
            out.rowIdx.insert(out.rowIdx.end(), s.rowIdx.begin(),
                              s.rowIdx.end());
            out.colIdx.insert(out.colIdx.end(), s.colIdx.begin(),
                              s.colIdx.end());
            out.values.insert(out.values.end(), s.values.begin(),
                              s.values.end());
        }
        return out;
      }
    }
    MORPHEUS_PANIC("unknown object kind");
}

}  // namespace morpheus::workloads
