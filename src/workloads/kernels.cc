#include "workloads/kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "sim/logging.hh"

namespace morpheus::workloads {

namespace {

/** Stable digest of a double (bit pattern, NaN-safe). */
std::uint64_t
bits(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** FNV-1a over a stream of u64 words. */
class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xFF;
            _h *= 1099511628211ULL;
        }
    }

    void addDouble(double v) { add(bits(v)); }
    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 1469598103934665603ULL;
};

/** Digest sampling stride: everything for small n, sparse for big. */
std::size_t
digestStep(std::size_t n)
{
    return n < 256 ? 1 : n / 128;
}

/**
 * Paper-scale kernel-cost calibration.
 *
 * The harness runs scaled-down inputs (Table I sizes / ~200..800) so
 * the whole suite executes in seconds, but several kernels are
 * super-linear (O(n^3) factorizations, convergence-iteration counts
 * that grow with input), so charging the literal FLOPs of the scaled
 * input would collapse their share of execution time and distort the
 * Fig 2 breakdown. The *charged* work therefore uses per-element
 * costs fixed at the paper's input scale (e.g., a Gaussian row update
 * costs 2/3*N_paper flops per element); the functional computation
 * still runs on the actual data. Reported ratios are then
 * scale-invariant, matching how the paper's testbed would behave.
 */
constexpr double kPaperMatrixN = 26000.0;   // 1.5-2.4 GB dense inputs
constexpr double kPaperRankIters = 44.0;    // PageRank convergence
constexpr double kPaperCcPasses = 4.8;      // CC label-prop sweeps
constexpr double kPaperSsspRounds = 27.0;   // Bellman-Ford sweeps
constexpr double kPaperKmeansIters = 130.0;  // Kmeans convergence
constexpr double kGpuUncoalesced = 64.0;    // scattered graph gathers

}  // namespace

KernelResult
pageRank(const serde::EdgeListObject &g, unsigned iters)
{
    const std::size_t v = g.numVertices;
    const std::size_t e = g.numEdges();
    std::vector<double> rank(v, 1.0 / static_cast<double>(v));
    std::vector<double> next(v);
    std::vector<std::uint32_t> out_degree(v, 0);
    for (std::size_t i = 0; i < e; ++i)
        ++out_degree[g.src[i]];

    const double damping = 0.85;
    for (unsigned it = 0; it < iters; ++it) {
        std::fill(next.begin(), next.end(),
                  (1.0 - damping) / static_cast<double>(v));
        for (std::size_t i = 0; i < e; ++i) {
            const std::uint32_t s = g.src[i];
            if (out_degree[s] > 0) {
                next[g.dst[i]] +=
                    damping * rank[s] / out_degree[s];
            }
        }
        rank.swap(next);
    }

    Digest d;
    for (std::size_t i = 0; i < v; i += digestStep(v))
        d.addDouble(rank[i]);
    d.add(v);

    KernelResult r;
    r.checksum = d.value();
    // ~12 cycles per edge per iteration (gather + divide amortised),
    // high-IPC code compared to parsing.
    r.work.cpuCycles =
        12.0 * static_cast<double>(e) * kPaperRankIters + 40.0 * v;
    r.work.hostMemBytes = static_cast<std::uint64_t>(
        20.0 * static_cast<double>(e) * kPaperRankIters);
    r.work.gpuFlop = 3.0 * static_cast<double>(e) * kPaperRankIters;
    r.work.gpuMemBytes = r.work.hostMemBytes;
    return r;
}

KernelResult
connectedComponents(const serde::EdgeListObject &g)
{
    const std::size_t v = g.numVertices;
    std::vector<std::uint32_t> parent(v);
    std::iota(parent.begin(), parent.end(), 0u);

    // Union-find with path halving.
    auto find = [&parent](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (std::size_t i = 0; i < g.numEdges(); ++i) {
        const std::uint32_t a = find(g.src[i]);
        const std::uint32_t b = find(g.dst[i]);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }
    std::uint32_t components = 0;
    Digest d;
    for (std::uint32_t i = 0; i < v; ++i) {
        const std::uint32_t root = find(i);
        if (root == i)
            ++components;
        if (i % digestStep(v) == 0)
            d.add(root);  // sampled component labels
    }
    d.add(components);
    d.add(v);

    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles =
        (18.0 * static_cast<double>(g.numEdges()) +
         8.0 * static_cast<double>(v)) * kPaperCcPasses;
    r.work.hostMemBytes = static_cast<std::uint64_t>(
        16.0 * static_cast<double>(g.numEdges()) * kPaperCcPasses);
    r.work.gpuFlop = 0.0;
    r.work.gpuMemBytes = r.work.hostMemBytes;
    return r;
}

KernelResult
sssp(const serde::EdgeListObject &g, std::uint32_t source,
     unsigned rounds)
{
    MORPHEUS_ASSERT(g.weighted, "SSSP needs weighted edges");
    const std::size_t v = g.numVertices;
    constexpr std::int64_t kInf =
        std::numeric_limits<std::int64_t>::max() / 4;
    std::vector<std::int64_t> dist(v, kInf);
    dist[source % v] = 0;

    // Bellman-Ford, bounded rounds (the MPI formulation's sweep count).
    bool changed = true;
    for (unsigned it = 0; it < rounds && changed; ++it) {
        changed = false;
        for (std::size_t i = 0; i < g.numEdges(); ++i) {
            const std::int64_t cand = dist[g.src[i]] + g.weight[i];
            if (dist[g.src[i]] < kInf && cand < dist[g.dst[i]]) {
                dist[g.dst[i]] = cand;
                changed = true;
            }
        }
    }

    Digest d;
    for (std::size_t i = 0; i < v; i += digestStep(v))
        d.add(static_cast<std::uint64_t>(dist[i]));

    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles =
        10.0 * static_cast<double>(g.numEdges()) * kPaperSsspRounds;
    r.work.hostMemBytes = static_cast<std::uint64_t>(
        20.0 * static_cast<double>(g.numEdges()) * kPaperSsspRounds);
    r.work.gpuFlop =
        static_cast<double>(g.numEdges()) * kPaperSsspRounds;
    r.work.gpuMemBytes = r.work.hostMemBytes;
    return r;
}

KernelResult
bfs(const serde::EdgeListObject &g, std::uint32_t source)
{
    const std::size_t v = g.numVertices;
    // CSR adjacency.
    std::vector<std::uint32_t> offset(v + 1, 0);
    for (std::size_t i = 0; i < g.numEdges(); ++i)
        ++offset[g.src[i] + 1];
    for (std::size_t i = 1; i <= v; ++i)
        offset[i] += offset[i - 1];
    std::vector<std::uint32_t> adj(g.numEdges());
    std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (std::size_t i = 0; i < g.numEdges(); ++i)
        adj[cursor[g.src[i]]++] = g.dst[i];

    std::vector<std::int32_t> level(v, -1);
    std::queue<std::uint32_t> q;
    level[source % v] = 0;
    q.push(source % v);
    std::uint64_t visited = 1;
    while (!q.empty()) {
        const std::uint32_t u = q.front();
        q.pop();
        for (std::uint32_t i = offset[u]; i < offset[u + 1]; ++i) {
            const std::uint32_t w = adj[i];
            if (level[w] < 0) {
                level[w] = level[u] + 1;
                q.push(w);
                ++visited;
            }
        }
    }

    Digest d;
    d.add(visited);
    for (std::size_t i = 0; i < v; i += digestStep(v))
        d.add(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(level[i])));

    // Deepest level reached (the level-synchronous GPU formulation
    // rescans the frontier structures once per level).
    std::int32_t max_level = 0;
    for (const auto l : level)
        max_level = std::max(max_level, l);

    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 14.0 * static_cast<double>(g.numEdges());
    r.work.hostMemBytes = 12ULL * g.numEdges();
    // Rodinia BFS is bandwidth bound on the GPU: one pass per level,
    // with heavily uncoalesced gathers through the CSR arrays.
    r.work.gpuFlop = 0.5 * static_cast<double>(g.numEdges());
    r.work.gpuMemBytes = static_cast<std::uint64_t>(
        28.0 * static_cast<double>(g.numEdges()) *
        static_cast<double>(std::max<std::int32_t>(max_level, 1)) *
        kGpuUncoalesced / 4.0);
    return r;
}

KernelResult
gaussianEliminate(serde::MatrixObject m)
{
    MORPHEUS_ASSERT(m.rows == m.cols, "Gaussian needs a square matrix");
    const std::size_t n = m.rows;
    auto at = [&m, n](std::size_t r, std::size_t c) -> float & {
        return m.values[r * n + c];
    };
    for (std::size_t k = 0; k + 1 < n; ++k) {
        for (std::size_t r = k + 1; r < n; ++r) {
            const float f = at(r, k) / at(k, k);
            for (std::size_t c = k; c < n; ++c)
                at(r, c) -= f * at(k, c);
        }
    }
    Digest d;
    for (std::size_t i = 0; i < n; i += digestStep(n))
        d.addDouble(at(i, i));

    // Charged at paper scale: each of the n^2 elements sees ~2/3 * N
    // multiply-adds over the elimination.
    const double n2 = static_cast<double>(n) * n;
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 1.2 * (2.0 / 3.0) * n2 * kPaperMatrixN;
    r.work.hostMemBytes =
        static_cast<std::uint64_t>(8.0 * n2 * std::sqrt(kPaperMatrixN));
    r.work.gpuFlop = (2.0 / 3.0) * n2 * kPaperMatrixN;
    r.work.gpuMemBytes = r.work.hostMemBytes;
    return r;
}

KernelResult
hybridSort(serde::IntArrayObject a)
{
    const std::size_t n = a.values.size();
    // Bucket pass then per-bucket sort — the "hybrid" structure.
    constexpr unsigned kBuckets = 256;
    std::vector<std::vector<std::int64_t>> buckets(kBuckets);
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (const auto v : a.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double width =
        (static_cast<double>(hi) - static_cast<double>(lo) + 1.0) /
        kBuckets;
    for (const auto v : a.values) {
        auto b = static_cast<unsigned>(
            (static_cast<double>(v) - static_cast<double>(lo)) / width);
        buckets[std::min(b, kBuckets - 1)].push_back(v);
    }
    std::size_t pos = 0;
    for (auto &b : buckets) {
        std::sort(b.begin(), b.end());
        for (const auto v : b)
            a.values[pos++] = v;
    }
    MORPHEUS_ASSERT(pos == n, "hybrid sort lost elements");

    Digest d;
    for (std::size_t i = 0; i < n; i += digestStep(n))
        d.add(static_cast<std::uint64_t>(a.values[i]));
    d.add(n);

    // Paper-scale sort depth: log2 of the multi-hundred-million
    // element input, with multi-pass bucket+merge traffic.
    const double paper_logn = 38.0;
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 9.0 * static_cast<double>(n) * paper_logn;
    r.work.hostMemBytes =
        static_cast<std::uint64_t>(24.0 * static_cast<double>(n));
    r.work.gpuFlop = 2.0 * static_cast<double>(n) * paper_logn;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(
        64.0 * static_cast<double>(n) * paper_logn / 2.0);
    return r;
}

KernelResult
kmeans(const serde::PointSetObject &p, unsigned k, unsigned iters)
{
    const std::size_t n = p.numPoints();
    const std::size_t d = p.dims;
    MORPHEUS_ASSERT(n >= k, "kmeans needs at least k points");
    std::vector<double> centres(k * d);
    for (unsigned c = 0; c < k; ++c) {
        for (std::size_t j = 0; j < d; ++j)
            centres[c * d + j] = p.coords[(c * (n / k)) * d + j];
    }
    std::vector<unsigned> assign(n, 0);
    for (unsigned it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            unsigned best_c = 0;
            for (unsigned c = 0; c < k; ++c) {
                double dist = 0.0;
                for (std::size_t j = 0; j < d; ++j) {
                    const double delta =
                        p.coords[i * d + j] - centres[c * d + j];
                    dist += delta * delta;
                }
                if (dist < best) {
                    best = dist;
                    best_c = c;
                }
            }
            assign[i] = best_c;
        }
        std::vector<double> sums(k * d, 0.0);
        std::vector<std::uint32_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[assign[i]];
            for (std::size_t j = 0; j < d; ++j)
                sums[assign[i] * d + j] += p.coords[i * d + j];
        }
        for (unsigned c = 0; c < k; ++c) {
            if (counts[c] > 0) {
                for (std::size_t j = 0; j < d; ++j)
                    centres[c * d + j] = sums[c * d + j] / counts[c];
            }
        }
    }

    Digest dig;
    for (const double c : centres)
        dig.addDouble(std::round(c * 1000.0));

    // Charged at the paper-scale convergence iteration count.
    const double ops =
        static_cast<double>(n) * k * d * kPaperKmeansIters;
    KernelResult r;
    r.checksum = dig.value();
    r.work.cpuCycles = 3.0 * ops;
    r.work.hostMemBytes = static_cast<std::uint64_t>(8.0 * ops / k);
    r.work.gpuFlop = 3.0 * ops;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(8.0 * ops / k);
    return r;
}

KernelResult
ludDecompose(serde::MatrixObject m)
{
    MORPHEUS_ASSERT(m.rows == m.cols, "LUD needs a square matrix");
    const std::size_t n = m.rows;
    auto at = [&m, n](std::size_t r, std::size_t c) -> float & {
        return m.values[r * n + c];
    };
    // Doolittle, in place: U in the upper triangle, L below.
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t r = k + 1; r < n; ++r) {
            at(r, k) /= at(k, k);
            for (std::size_t c = k + 1; c < n; ++c)
                at(r, c) -= at(r, k) * at(k, c);
        }
    }
    Digest d;
    for (std::size_t i = 0; i < n; i += digestStep(n))
        d.addDouble(at(i, i));

    const double n2 = static_cast<double>(n) * n;
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 1.2 * (2.0 / 3.0) * n2 * kPaperMatrixN;
    r.work.hostMemBytes =
        static_cast<std::uint64_t>(8.0 * n2 * std::sqrt(kPaperMatrixN));
    r.work.gpuFlop = (2.0 / 3.0) * n2 * kPaperMatrixN;
    r.work.gpuMemBytes = r.work.hostMemBytes;
    return r;
}

KernelResult
nearestNeighbors(const serde::PointSetObject &p, unsigned k)
{
    const std::size_t n = p.numPoints();
    const std::size_t d = p.dims;
    MORPHEUS_ASSERT(n > k, "kNN needs more points than k");
    // Query = centroid of the set (deterministic).
    std::vector<double> query(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j)
            query[j] += p.coords[i * d + j];
    }
    for (auto &q : query)
        q /= static_cast<double>(n);

    // Max-heap of the k best distances.
    std::priority_queue<std::pair<double, std::uint32_t>> heap;
    for (std::size_t i = 0; i < n; ++i) {
        double dist = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
            const double delta = p.coords[i * d + j] - query[j];
            dist += delta * delta;
        }
        if (heap.size() < k) {
            heap.emplace(dist, static_cast<std::uint32_t>(i));
        } else if (dist < heap.top().first) {
            heap.pop();
            heap.emplace(dist, static_cast<std::uint32_t>(i));
        }
    }
    Digest dig;
    while (!heap.empty()) {
        dig.add(heap.top().second);
        heap.pop();
    }

    // Rodinia NN evaluates many concurrent queries (hurricane records
    // against a query list); charge the paper-scale query batch.
    const double paper_queries = 32.0;
    const double ops = static_cast<double>(n) * d * paper_queries;
    KernelResult r;
    r.checksum = dig.value();
    r.work.cpuCycles = 3.5 * ops;
    r.work.hostMemBytes = static_cast<std::uint64_t>(16.0 * ops);
    r.work.gpuFlop = 3.0 * ops;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(16.0 * ops);
    return r;
}

KernelResult
spmv(const serde::CooMatrixObject &m, unsigned iters)
{
    const std::size_t n = m.cols;
    std::vector<double> x(n, 1.0);
    std::vector<double> y(m.rows, 0.0);
    for (unsigned it = 0; it < iters; ++it) {
        std::fill(y.begin(), y.end(), 0.0);
        for (std::size_t i = 0; i < m.nnz(); ++i)
            y[m.rowIdx[i]] += m.values[i] * x[m.colIdx[i]];
        // Feed back (normalised) to keep values bounded.
        for (std::size_t i = 0; i < std::min<std::size_t>(n, m.rows);
             ++i) {
            x[i] = y[i] / 1000.0;
        }
    }
    Digest d;
    for (std::size_t i = 0; i < m.rows; i += digestStep(m.rows))
        d.addDouble(std::round(y[i] * 100.0));

    const double paper_iters = 11.0;
    const double ops = static_cast<double>(m.nnz()) * paper_iters;
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 7.0 * ops;
    r.work.hostMemBytes = static_cast<std::uint64_t>(28.0 * ops);
    r.work.gpuFlop = 2.0 * ops;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(28.0 * ops);
    return r;
}

KernelResult
csvColumnStats(const serde::CsvTableObject &t)
{
    const std::size_t cols = t.columns.size();
    const std::size_t rows = t.numRows();
    std::vector<double> sum(cols, 0.0);
    std::vector<double> lo(cols,
                           std::numeric_limits<double>::infinity());
    std::vector<double> hi(cols,
                           -std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const double v = t.cell(r, c);
            sum[c] += v;
            lo[c] = std::min(lo[c], v);
            hi[c] = std::max(hi[c], v);
        }
    }
    Digest d;
    for (std::size_t c = 0; c < cols; ++c) {
        d.addDouble(rows ? sum[c] / static_cast<double>(rows) : 0.0);
        d.addDouble(lo[c]);
        d.addDouble(hi[c]);
    }

    const double cells = static_cast<double>(rows) * cols;
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 5.0 * cells;
    r.work.hostMemBytes = static_cast<std::uint64_t>(8.0 * cells);
    r.work.gpuFlop = 3.0 * cells;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(8.0 * cells);
    return r;
}

KernelResult
jsonRecordReduce(const serde::JsonRecordsObject &o)
{
    Digest d;
    double total = 0.0;
    for (std::size_t r = 0; r < o.numRecords(); ++r) {
        double sq = 0.0;
        for (std::uint32_t i = o.recordOffsets[r];
             i < o.recordOffsets[r + 1]; ++i) {
            sq += o.values[i] * o.values[i];
        }
        total += std::sqrt(sq);
        if (r % digestStep(o.numRecords()) == 0)
            d.addDouble(std::round(std::sqrt(sq) * 100.0));
    }
    d.addDouble(std::round(total));

    const double n = static_cast<double>(o.values.size());
    KernelResult r;
    r.checksum = d.value();
    r.work.cpuCycles = 6.0 * n + 30.0 * static_cast<double>(
                                            o.numRecords());
    r.work.hostMemBytes = static_cast<std::uint64_t>(8.0 * n);
    r.work.gpuFlop = 3.0 * n;
    r.work.gpuMemBytes = static_cast<std::uint64_t>(8.0 * n);
    return r;
}

}  // namespace morpheus::workloads
