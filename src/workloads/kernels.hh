/**
 * @file
 * The computation kernels of the ten benchmark applications.
 *
 * Every kernel is implemented functionally (real results, used to
 * validate that all execution paths produced identical objects) and
 * returns a checksum plus a KernelWork descriptor the timing models
 * consume: CPU cycles for MPI/serial apps, a FLOP + memory-byte
 * roofline for the CUDA apps (paper §VI-B: the kernels themselves are
 * identical across baseline and Morpheus).
 */

#ifndef MORPHEUS_WORKLOADS_KERNELS_HH
#define MORPHEUS_WORKLOADS_KERNELS_HH

#include <cstdint>

#include "workloads/objects.hh"

namespace morpheus::workloads {

/** Work descriptor the timing models charge for one kernel run. */
struct KernelWork
{
    double cpuCycles = 0.0;       ///< Host-CPU kernel cycles (MPI/serial).
    double gpuFlop = 0.0;         ///< GPU floating-point work.
    std::uint64_t gpuMemBytes = 0;///< GPU memory traffic (roofline).
    std::uint64_t hostMemBytes = 0;///< Host memory traffic of the kernel.
};

/** Outcome of a functional kernel run. */
struct KernelResult
{
    std::uint64_t checksum = 0;  ///< Deterministic result digest.
    KernelWork work;
};

KernelResult pageRank(const serde::EdgeListObject &g, unsigned iters);
KernelResult connectedComponents(const serde::EdgeListObject &g);
KernelResult sssp(const serde::EdgeListObject &g, std::uint32_t source,
                  unsigned rounds);
KernelResult bfs(const serde::EdgeListObject &g, std::uint32_t source);
KernelResult gaussianEliminate(serde::MatrixObject m);
KernelResult hybridSort(serde::IntArrayObject a);
KernelResult kmeans(const serde::PointSetObject &p, unsigned k,
                    unsigned iters);
KernelResult ludDecompose(serde::MatrixObject m);
KernelResult nearestNeighbors(const serde::PointSetObject &p,
                              unsigned k);
KernelResult spmv(const serde::CooMatrixObject &m, unsigned iters);

/** Extension: per-column statistics over a CSV table. */
KernelResult csvColumnStats(const serde::CsvTableObject &t);

/** Extension: per-record L2-norm reduction over JSON records. */
KernelResult jsonRecordReduce(const serde::JsonRecordsObject &o);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_KERNELS_HH
