/**
 * @file
 * Benchmark application descriptors (paper Table I).
 *
 * Each spec bundles what the harness needs: the input generator, the
 * object kind (which selects both the host parser and the device
 * StorageApp), the parallel model (number of I/O threads), the
 * baseline read() chunk size, and the functional kernel.
 *
 * Inputs are generated at a configurable scale; scale 1.0 yields a few
 * to a few tens of MiB per app (Table I's multi-GB inputs divided by
 * ~200) so the whole suite runs in seconds. All reported metrics are
 * ratios or size-linear rates, so the shapes are scale-invariant.
 *
 * Naming note: the OCR of Table I blanked the two BigDataBench rows'
 * application names. BigDataBench's MPI integer-text workloads are its
 * graph analytics suite; we use PageRank (the 3.6 GB row) and
 * Connected Components (the 602 MB row), and add SSSP for the row the
 * OCR lost entirely ("10 benchmark applications" vs. 9 legible rows).
 */

#ifndef MORPHEUS_WORKLOADS_APP_SPEC_HH
#define MORPHEUS_WORKLOADS_APP_SPEC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workloads/kernels.hh"
#include "workloads/objects.hh"

namespace morpheus::workloads {

/** How the application parallelizes its computation (Table I). */
enum class ParallelModel { kSerial, kMpi, kCuda };

/** One benchmark application. */
struct AppSpec
{
    std::string name;
    std::string suite;          ///< "BigDataBench", "Rodinia", "N/A".
    ParallelModel parallel = ParallelModel::kSerial;
    unsigned ranks = 1;         ///< I/O threads (MPI ranks; 1 otherwise).
    ObjectKind object = ObjectKind::kEdgeList;
    std::uint64_t paperInputBytes = 0;  ///< Table I input size.
    double floatFraction = 0.0;         ///< Fraction of float tokens.

    /** read() granularity of the unmodified application. */
    std::uint32_t baselineChunkBytes = 64 * 1024;

    /** "Other CPU computation" (Fig 2) as a fraction of deser time. */
    double otherCpuFraction = 0.05;

    /** Build the ground-truth object at @p scale. */
    std::function<AnyObject(std::uint64_t seed, double scale)> generate;

    /** Run the kernel functionally and describe its cost. */
    std::function<KernelResult(const AnyObject &)> kernel;

    bool isGpuApp() const { return parallel == ParallelModel::kCuda; }
};

/** The ten applications of Table I. */
const std::vector<AppSpec> &standardSuite();

/**
 * Extension applications beyond Table I, exercising the CSV and JSON
 * interchange formats §II motivates (the Table I suite is text/token
 * based). Not part of the paper's figures; used by
 * bench/extension_formats.
 */
const std::vector<AppSpec> &extensionSuite();

/** Look up an app by name in both suites (fatal if absent). */
const AppSpec &findApp(const std::string &name);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_APP_SPEC_HH
