/**
 * @file
 * Splitting objects across MPI ranks and merging them back.
 *
 * MPI applications in the suite read one input file per rank (the
 * standard BigDataBench arrangement), so the generator's object is
 * partitioned into per-rank sub-objects before serialization, and the
 * per-rank deserialized objects merge back into the full object for
 * the kernel and for validation.
 */

#ifndef MORPHEUS_WORKLOADS_PARTITION_HH
#define MORPHEUS_WORKLOADS_PARTITION_HH

#include <vector>

#include "workloads/objects.hh"

namespace morpheus::workloads {

/** Split @p obj into @p parts sub-objects (element-wise round-robin
 *  free: contiguous shards, remainder to the front shards). */
std::vector<AnyObject> partitionObject(const AnyObject &obj,
                                       unsigned parts);

/** Reassemble shards produced by partitionObject. */
AnyObject mergeObjects(ObjectKind kind,
                       const std::vector<AnyObject> &parts);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_PARTITION_HH
