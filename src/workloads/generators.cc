#include "workloads/generators.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace morpheus::workloads {

serde::EdgeListObject
genEdgeList(std::uint64_t seed, std::uint32_t vertices,
            std::uint32_t edges, bool weighted)
{
    MORPHEUS_ASSERT(vertices >= 2, "graph needs at least 2 vertices");
    sim::Rng rng(seed);
    serde::EdgeListObject g;
    g.numVertices = vertices;
    g.weighted = weighted;
    g.src.reserve(edges);
    g.dst.reserve(edges);
    if (weighted)
        g.weight.reserve(edges);

    for (std::uint32_t i = 0; i < edges; ++i) {
        // Skewed source selection: squaring a uniform draw biases
        // toward low vertex ids, giving a heavy-tailed out-degree.
        const double u = rng.nextDouble();
        const auto src = static_cast<std::uint32_t>(
            u * u * static_cast<double>(vertices));
        auto dst = static_cast<std::uint32_t>(
            rng.nextBelow(vertices));
        if (dst == src)
            dst = (dst + 1) % vertices;
        g.src.push_back(std::min(src, vertices - 1));
        g.dst.push_back(dst);
        if (weighted) {
            g.weight.push_back(
                static_cast<std::int32_t>(rng.nextInRange(1, 99)));
        }
    }
    return g;
}

serde::MatrixObject
genMatrix(std::uint64_t seed, std::uint32_t n, double float_fraction)
{
    sim::Rng rng(seed);
    serde::MatrixObject m;
    m.rows = n;
    m.cols = n;
    m.values.resize(static_cast<std::size_t>(n) * n);
    for (std::uint32_t r = 0; r < n; ++r) {
        double row_sum = 0.0;
        for (std::uint32_t c = 0; c < n; ++c) {
            double v;
            if (rng.nextBool(float_fraction)) {
                // Two-decimal fractional value; round-trips exactly
                // through the %.4f text encoding.
                v = static_cast<double>(rng.nextInRange(-9999, 9999)) /
                    100.0;
            } else {
                v = static_cast<double>(rng.nextInRange(-9999, 9999));
            }
            m.values[static_cast<std::size_t>(r) * n + c] =
                static_cast<float>(v);
            row_sum += std::abs(v);
        }
        // Diagonal dominance for numerical stability.
        // Keep the dominant diagonal integer valued so it serializes
        // compactly and round-trips exactly through float.
        m.values[static_cast<std::size_t>(r) * n + r] =
            static_cast<float>(std::ceil(row_sum) + 1.0 +
                               static_cast<double>(rng.nextInRange(0, 9)));
    }
    return m;
}

serde::IntArrayObject
genIntArray(std::uint64_t seed, std::uint32_t n)
{
    sim::Rng rng(seed);
    serde::IntArrayObject a;
    a.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        a.values.push_back(rng.nextInRange(0, 999999));
    return a;
}

serde::PointSetObject
genPointSet(std::uint64_t seed, std::uint32_t points, std::uint32_t dims,
            double float_fraction)
{
    sim::Rng rng(seed);
    serde::PointSetObject p;
    p.dims = dims;
    p.coords.reserve(static_cast<std::size_t>(points) * dims);

    // A handful of cluster centres.
    const unsigned clusters = 8;
    std::vector<double> centres(static_cast<std::size_t>(clusters) *
                                dims);
    for (auto &c : centres)
        c = static_cast<double>(rng.nextInRange(0, 30000));

    for (std::uint32_t i = 0; i < points; ++i) {
        const unsigned k =
            static_cast<unsigned>(rng.nextBelow(clusters));
        for (std::uint32_t d = 0; d < dims; ++d) {
            const double centre =
                centres[static_cast<std::size_t>(k) * dims + d];
            double v = centre + static_cast<double>(
                                    rng.nextInRange(-500, 500));
            if (rng.nextBool(float_fraction)) {
                v += static_cast<double>(rng.nextInRange(0, 99)) /
                     100.0;
            }
            p.coords.push_back(static_cast<float>(v));
        }
    }
    return p;
}

serde::CsvTableObject
genCsvTable(std::uint64_t seed, std::uint32_t rows, std::uint32_t cols,
            double float_fraction)
{
    sim::Rng rng(seed);
    serde::CsvTableObject t;
    for (std::uint32_t c = 0; c < cols; ++c)
        t.columns.push_back("metric_" + std::to_string(c));
    t.values.reserve(static_cast<std::size_t>(rows) * cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (rng.nextBool(float_fraction)) {
                t.values.push_back(
                    static_cast<double>(rng.nextInRange(-99999, 99999)) /
                    100.0);
            } else {
                t.values.push_back(static_cast<double>(
                    rng.nextInRange(-100000, 100000)));
            }
        }
    }
    return t;
}

serde::JsonRecordsObject
genJsonRecords(std::uint64_t seed, std::uint32_t records,
               double float_fraction)
{
    sim::Rng rng(seed);
    serde::JsonRecordsObject o;
    for (std::uint32_t r = 0; r < records; ++r) {
        const auto n = 1 + rng.nextBelow(12);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (rng.nextBool(float_fraction)) {
                o.values.push_back(
                    static_cast<double>(rng.nextInRange(-9999, 9999)) /
                    100.0);
            } else {
                o.values.push_back(static_cast<double>(
                    rng.nextInRange(-100000, 100000)));
            }
        }
        o.recordOffsets.push_back(
            static_cast<std::uint32_t>(o.values.size()));
    }
    return o;
}

serde::CooMatrixObject
genCooMatrix(std::uint64_t seed, std::uint32_t rows, std::uint32_t cols,
             std::uint32_t nnz, double float_fraction)
{
    sim::Rng rng(seed);
    serde::CooMatrixObject m;
    m.rows = rows;
    m.cols = cols;
    m.rowIdx.reserve(nnz);
    m.colIdx.reserve(nnz);
    m.values.reserve(nnz);
    for (std::uint32_t i = 0; i < nnz; ++i) {
        // Row-sorted stream (the usual on-disk COO layout).
        const auto r = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(i) * rows) / nnz);
        const auto c =
            static_cast<std::uint32_t>(rng.nextBelow(cols));
        double v;
        if (rng.nextBool(float_fraction)) {
            v = static_cast<double>(rng.nextInRange(-99999, 99999)) /
                1000.0;
        } else {
            v = static_cast<double>(rng.nextInRange(-999, 999));
        }
        m.rowIdx.push_back(r);
        m.colIdx.push_back(c);
        m.values.push_back(static_cast<float>(v));
    }
    return m;
}

ZipfianGenerator::ZipfianGenerator(std::uint32_t n, double s) : _s(s)
{
    MORPHEUS_ASSERT(n > 0, "zipfian over an empty item set");
    MORPHEUS_ASSERT(s >= 0.0, "zipfian skew must be non-negative");
    _cdf.resize(n);
    double sum = 0.0;
    for (std::uint32_t k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
        _cdf[k] = sum;
    }
    for (std::uint32_t k = 0; k < n; ++k)
        _cdf[k] /= sum;
    _cdf.back() = 1.0;
}

std::uint32_t
ZipfianGenerator::indexForUniform(double u) const
{
    const auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
    const auto idx = static_cast<std::uint32_t>(it - _cdf.begin());
    return idx < size() ? idx : size() - 1;
}

std::uint32_t
ZipfianGenerator::draw(sim::Rng &rng) const
{
    return indexForUniform(rng.nextDouble());
}

}  // namespace morpheus::workloads
