/**
 * @file
 * Uniform handling of the five application-object kinds: a variant
 * plus dispatch helpers for parsing (host path), binary reconstruction
 * (Morpheus path), serialization, and StorageApp image selection.
 */

#ifndef MORPHEUS_WORKLOADS_OBJECTS_HH
#define MORPHEUS_WORKLOADS_OBJECTS_HH

#include <cstdint>
#include <variant>
#include <vector>

#include "core/standard_apps.hh"
#include "serde/csv.hh"
#include "serde/formats.hh"
#include "serde/json.hh"

namespace morpheus::workloads {

/** Which object type an application deserializes. */
enum class ObjectKind {
    kEdgeList,
    kEdgeListWeighted,
    kMatrix,
    kIntArray,
    kPointSet,
    kCooMatrix,
    kCsvTable,     // extension formats (§II's CSV/JSON motivation)
    kJsonRecords,
};

/** Any of the supported object types. */
using AnyObject =
    std::variant<serde::EdgeListObject, serde::MatrixObject,
                 serde::IntArrayObject, serde::PointSetObject,
                 serde::CooMatrixObject, serde::CsvTableObject,
                 serde::JsonRecordsObject>;

/**
 * Host-path deserialization: parse @p data (text) into the object,
 * accumulating the parse cost into @p cost.
 */
AnyObject parseObject(ObjectKind kind, const std::uint8_t *data,
                      std::size_t size, serde::ParseCost *cost);

/** Morpheus-path reconstruction from the DMAed binary stream. */
AnyObject objectFromBinary(ObjectKind kind,
                           const std::vector<std::uint8_t> &bytes);

/** Text-serialize (used by generators and round-trip tests). */
std::vector<std::uint8_t> serializeObject(const AnyObject &obj);

/** Binary size of the object (DMA payload). */
std::uint64_t objectBytes(const AnyObject &obj);

/** Binary encoding of the object. */
std::vector<std::uint8_t> objectToBinary(const AnyObject &obj);

/** StorageApp image that deserializes @p kind on the device. */
const core::StorageAppImage &imageFor(ObjectKind kind,
                                      const core::StandardImages &imgs);

/** MINIT argument word for @p kind (bit0 = weighted edges). */
std::uint32_t appArgFor(ObjectKind kind);

/** Deep equality across the variant. */
bool objectsEqual(const AnyObject &a, const AnyObject &b);

}  // namespace morpheus::workloads

#endif  // MORPHEUS_WORKLOADS_OBJECTS_HH
