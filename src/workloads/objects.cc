#include "workloads/objects.hh"

#include "sim/logging.hh"

namespace morpheus::workloads {

AnyObject
parseObject(ObjectKind kind, const std::uint8_t *data, std::size_t size,
            serde::ParseCost *cost)
{
    serde::TextScanner scanner(data, size);
    AnyObject out;
    bool ok = false;
    switch (kind) {
      case ObjectKind::kEdgeList: {
        serde::EdgeListObject o;
        ok = o.parse(scanner, /*with_weights=*/false);
        out = std::move(o);
        break;
      }
      case ObjectKind::kEdgeListWeighted: {
        serde::EdgeListObject o;
        ok = o.parse(scanner, /*with_weights=*/true);
        out = std::move(o);
        break;
      }
      case ObjectKind::kMatrix: {
        serde::MatrixObject o;
        ok = o.parse(scanner);
        out = std::move(o);
        break;
      }
      case ObjectKind::kIntArray: {
        serde::IntArrayObject o;
        ok = o.parse(scanner);
        out = std::move(o);
        break;
      }
      case ObjectKind::kPointSet: {
        serde::PointSetObject o;
        ok = o.parse(scanner);
        out = std::move(o);
        break;
      }
      case ObjectKind::kCooMatrix: {
        serde::CooMatrixObject o;
        ok = o.parse(scanner);
        out = std::move(o);
        break;
      }
      case ObjectKind::kCsvTable: {
        serde::CsvTableObject o;
        ok = serde::parseCsvTable(data, size, &o, cost);
        MORPHEUS_ASSERT(ok, "CSV parse failed");
        return AnyObject(std::move(o));
      }
      case ObjectKind::kJsonRecords: {
        serde::JsonRecordsObject o;
        ok = serde::parseJsonRecords(data, size, &o, cost);
        MORPHEUS_ASSERT(ok, "JSON parse failed");
        return AnyObject(std::move(o));
      }
    }
    MORPHEUS_ASSERT(ok, "object parse failed (truncated input?)");
    if (cost)
        *cost += scanner.cost();
    return out;
}

AnyObject
objectFromBinary(ObjectKind kind, const std::vector<std::uint8_t> &bytes)
{
    switch (kind) {
      case ObjectKind::kEdgeList:
        return serde::EdgeListObject::fromBinary(bytes, false);
      case ObjectKind::kEdgeListWeighted:
        return serde::EdgeListObject::fromBinary(bytes, true);
      case ObjectKind::kMatrix:
        return serde::MatrixObject::fromBinary(bytes);
      case ObjectKind::kIntArray:
        return serde::IntArrayObject::fromBinary(bytes);
      case ObjectKind::kPointSet:
        return serde::PointSetObject::fromBinary(bytes);
      case ObjectKind::kCooMatrix:
        return serde::CooMatrixObject::fromBinary(bytes);
      case ObjectKind::kCsvTable:
        return serde::CsvTableObject::fromBinary(bytes);
      case ObjectKind::kJsonRecords:
        return serde::JsonRecordsObject::fromBinary(bytes);
    }
    MORPHEUS_PANIC("unknown object kind");
}

std::vector<std::uint8_t>
serializeObject(const AnyObject &obj)
{
    serde::TextWriter w;
    std::visit([&w](const auto &o) { o.serialize(w); }, obj);
    return w.take();
}

std::uint64_t
objectBytes(const AnyObject &obj)
{
    return std::visit([](const auto &o) { return o.objectBytes(); }, obj);
}

std::vector<std::uint8_t>
objectToBinary(const AnyObject &obj)
{
    return std::visit([](const auto &o) { return o.toBinary(); }, obj);
}

const core::StorageAppImage &
imageFor(ObjectKind kind, const core::StandardImages &imgs)
{
    switch (kind) {
      case ObjectKind::kEdgeList:
      case ObjectKind::kEdgeListWeighted:
        return imgs.edgeList;
      case ObjectKind::kMatrix:
        return imgs.matrix;
      case ObjectKind::kIntArray:
        return imgs.intArray;
      case ObjectKind::kPointSet:
        return imgs.pointSet;
      case ObjectKind::kCooMatrix:
        return imgs.cooMatrix;
      case ObjectKind::kCsvTable:
        return imgs.csvTable;
      case ObjectKind::kJsonRecords:
        return imgs.jsonRecords;
    }
    MORPHEUS_PANIC("unknown object kind");
}

std::uint32_t
appArgFor(ObjectKind kind)
{
    return kind == ObjectKind::kEdgeListWeighted ? 1u : 0u;
}

bool
objectsEqual(const AnyObject &a, const AnyObject &b)
{
    return a == b;
}

}  // namespace morpheus::workloads
