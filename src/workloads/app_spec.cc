#include "workloads/app_spec.hh"

#include <cmath>

#include "sim/logging.hh"
#include "workloads/generators.hh"

namespace morpheus::workloads {

namespace {

std::uint32_t
scaled(double base, double scale)
{
    const double v = base * scale;
    return v < 2.0 ? 2u : static_cast<std::uint32_t>(v);
}

std::vector<AppSpec>
buildSuite()
{
    std::vector<AppSpec> suite;

    // ---- BigDataBench (MPI, text graph inputs) ----------------------
    {
        AppSpec a;
        a.name = "pagerank";
        a.suite = "BigDataBench";
        a.parallel = ParallelModel::kMpi;
        a.ranks = 4;
        a.object = ObjectKind::kEdgeList;
        a.paperInputBytes = 3600ULL * 1000 * 1000;
        a.baselineChunkBytes = 64 * 1024;
        a.otherCpuFraction = 0.08;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genEdgeList(seed, scaled(60000, scale),
                                         scaled(1500000, scale), false));
        };
        a.kernel = [](const AnyObject &o) {
            return pageRank(std::get<serde::EdgeListObject>(o), 10);
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "conncomp";
        a.suite = "BigDataBench";
        a.parallel = ParallelModel::kMpi;
        a.ranks = 4;
        a.object = ObjectKind::kEdgeList;
        a.paperInputBytes = 602ULL * 1000 * 1000;
        a.baselineChunkBytes = 32 * 1024;
        a.otherCpuFraction = 0.15;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genEdgeList(seed + 1,
                                         scaled(30000, scale),
                                         scaled(400000, scale), false));
        };
        a.kernel = [](const AnyObject &o) {
            return connectedComponents(
                std::get<serde::EdgeListObject>(o));
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "sssp";
        a.suite = "BigDataBench";
        a.parallel = ParallelModel::kMpi;
        a.ranks = 4;
        a.object = ObjectKind::kEdgeListWeighted;
        a.paperInputBytes = 1200ULL * 1000 * 1000;
        a.baselineChunkBytes = 64 * 1024;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genEdgeList(seed + 2,
                                         scaled(40000, scale),
                                         scaled(900000, scale), true));
        };
        a.kernel = [](const AnyObject &o) {
            return sssp(std::get<serde::EdgeListObject>(o), 0, 8);
        };
        suite.push_back(std::move(a));
    }

    // ---- Rodinia (CUDA) ---------------------------------------------
    {
        AppSpec a;
        a.name = "bfs";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kEdgeList;
        a.paperInputBytes = 2530ULL * 1000 * 1000;
        a.baselineChunkBytes = 64 * 1024;
        a.otherCpuFraction = 0.04;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genEdgeList(seed + 3,
                                         scaled(80000, scale),
                                         scaled(1600000, scale), false));
        };
        a.kernel = [](const AnyObject &o) {
            return bfs(std::get<serde::EdgeListObject>(o), 0);
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "gaussian";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kMatrix;
        a.paperInputBytes = 1560ULL * 1000 * 1000;
        a.baselineChunkBytes = 128 * 1024;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(
                genMatrix(seed + 4, scaled(760, std::sqrt(scale)), 0.0));
        };
        a.kernel = [](const AnyObject &o) {
            return gaussianEliminate(std::get<serde::MatrixObject>(o));
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "hybridsort";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kIntArray;
        a.paperInputBytes = 3140ULL * 1000 * 1000;
        a.baselineChunkBytes = 16 * 1024;  // line-oriented reader
        a.otherCpuFraction = 0.04;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(
                genIntArray(seed + 5, scaled(1800000, scale)));
        };
        a.kernel = [](const AnyObject &o) {
            return hybridSort(std::get<serde::IntArrayObject>(o));
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "kmeans";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kPointSet;
        a.paperInputBytes = 1300ULL * 1000 * 1000;
        a.baselineChunkBytes = 32 * 1024;
        a.floatFraction = 0.05;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genPointSet(seed + 6,
                                         scaled(150000, scale), 10,
                                         0.05));
        };
        a.kernel = [](const AnyObject &o) {
            return kmeans(std::get<serde::PointSetObject>(o), 8, 6);
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "lud";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kMatrix;
        a.paperInputBytes = 2420ULL * 1000 * 1000;
        a.baselineChunkBytes = 128 * 1024;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(
                genMatrix(seed + 7, scaled(860, std::sqrt(scale)), 0.0));
        };
        a.kernel = [](const AnyObject &o) {
            return ludDecompose(std::get<serde::MatrixObject>(o));
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "nn";
        a.suite = "Rodinia";
        a.parallel = ParallelModel::kCuda;
        a.object = ObjectKind::kPointSet;
        a.paperInputBytes = 1640ULL * 1000 * 1000;
        a.baselineChunkBytes = 8 * 1024;  // record-oriented reader
        a.otherCpuFraction = 0.03;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genPointSet(seed + 8,
                                         scaled(220000, scale), 8,
                                         0.0));
        };
        a.kernel = [](const AnyObject &o) {
            return nearestNeighbors(std::get<serde::PointSetObject>(o),
                                    16);
        };
        suite.push_back(std::move(a));
    }

    // ---- Standalone -------------------------------------------------
    {
        AppSpec a;
        a.name = "spmv";
        a.suite = "N/A";
        a.parallel = ParallelModel::kSerial;
        a.object = ObjectKind::kCooMatrix;
        a.paperInputBytes = 110ULL * 1000 * 1000;
        a.baselineChunkBytes = 64 * 1024;
        a.floatFraction = 0.33;  // §VII-A: 33% of tokens are floats
        a.otherCpuFraction = 0.06;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genCooMatrix(seed + 9,
                                          scaled(60000, scale),
                                          scaled(60000, scale),
                                          scaled(450000, scale), 0.33));
        };
        a.kernel = [](const AnyObject &o) {
            return spmv(std::get<serde::CooMatrixObject>(o), 4);
        };
        suite.push_back(std::move(a));
    }

    return suite;
}

std::vector<AppSpec>
buildExtensionSuite()
{
    std::vector<AppSpec> suite;
    {
        AppSpec a;
        a.name = "csvstats";
        a.suite = "extension";
        a.parallel = ParallelModel::kMpi;
        a.ranks = 4;
        a.object = ObjectKind::kCsvTable;
        a.baselineChunkBytes = 64 * 1024;
        a.floatFraction = 0.25;
        a.otherCpuFraction = 0.06;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genCsvTable(seed + 20,
                                         scaled(200000, scale), 8,
                                         0.25));
        };
        a.kernel = [](const AnyObject &o) {
            return csvColumnStats(
                std::get<serde::CsvTableObject>(o));
        };
        suite.push_back(std::move(a));
    }
    {
        AppSpec a;
        a.name = "jsonreduce";
        a.suite = "extension";
        a.parallel = ParallelModel::kSerial;
        a.object = ObjectKind::kJsonRecords;
        a.baselineChunkBytes = 64 * 1024;
        a.floatFraction = 0.3;
        a.otherCpuFraction = 0.06;
        a.generate = [](std::uint64_t seed, double scale) {
            return AnyObject(genJsonRecords(seed + 21,
                                            scaled(250000, scale),
                                            0.3));
        };
        a.kernel = [](const AnyObject &o) {
            return jsonRecordReduce(
                std::get<serde::JsonRecordsObject>(o));
        };
        suite.push_back(std::move(a));
    }
    return suite;
}

}  // namespace

const std::vector<AppSpec> &
standardSuite()
{
    static const std::vector<AppSpec> suite = buildSuite();
    return suite;
}

const std::vector<AppSpec> &
extensionSuite()
{
    static const std::vector<AppSpec> suite = buildExtensionSuite();
    return suite;
}

const AppSpec &
findApp(const std::string &name)
{
    for (const auto &app : standardSuite()) {
        if (app.name == name)
            return app;
    }
    for (const auto &app : extensionSuite()) {
        if (app.name == name)
            return app;
    }
    MORPHEUS_FATAL("no such application in any suite: ", name);
}

}  // namespace morpheus::workloads
