#include "workloads/serving.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "host/host_exec.hh"
#include "obs/critical_path.hh"
#include "obs/flight_recorder.hh"
#include "obs/timeline.hh"
#include "serde/columnar.hh"
#include "shard/shard_fabric.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workloads/generators.hh"
#include "workloads/objects.hh"

namespace morpheus::workloads {

namespace {

/** Exact latency tails: every completed request's latency is kept and
 *  quantiles are true ceil-rank order statistics — the same pick the
 *  per-stage summarizer makes for its p99 exemplar, so a tenant's
 *  stage decomposition sums to its reported p99 exactly even when an
 *  overloaded run stretches the tail arbitrarily (a fixed-range
 *  histogram degraded to max() there). */
struct LatencyTally
{
    void sample(double us)
    {
        _v.push_back(us);
        _sorted = false;
    }
    std::uint64_t samples() const { return _v.size(); }
    double mean() const
    {
        if (_v.empty())
            return 0.0;
        double sum = 0.0;
        for (const double x : _v)
            sum += x;
        return sum / static_cast<double>(_v.size());
    }
    double max() const
    {
        ensureSorted();
        return _v.empty() ? 0.0 : _v.back();
    }
    double quantile(double q) const
    {
        if (_v.empty())
            return 0.0;
        ensureSorted();
        const auto rank = std::min<std::size_t>(
            _v.size() - 1,
            std::max<std::size_t>(
                1, static_cast<std::size_t>(std::ceil(
                       q * static_cast<double>(_v.size())))) -
                1);
        return _v[rank];
    }

  private:
    void ensureSorted() const
    {
        if (!_sorted) {
            std::sort(_v.begin(), _v.end());
            _sorted = true;
        }
    }
    mutable std::vector<double> _v;
    mutable bool _sorted = true;
};

/** One generated request of the open-loop trace. */
struct Request
{
    sim::Tick arrival = 0;
    unsigned tenantIdx = 0;
    unsigned classIdx = 0;  ///< Into the tenant's size classes.
    unsigned objIdx = 0;    ///< Into the class's object instances.
    /** MWRITE serialization request instead of a read. */
    bool write = false;
};

/** One pre-ingested object file a request can target. */
struct ObjectInstance
{
    host::FileExtent extent;
    std::uint64_t objectBytes = 0;
    /** Parse cost of the file, for the host-fallback path's CPU
     *  conversion charge (the paper's baseline model). For columnar
     *  tenants this is the reference scan's cost (same kernel the
     *  device runs), so the fallback charge matches the pushdown. */
    serde::ParseCost cost;
    /** SSD holding the file (0 outside fleet runs). */
    unsigned device = 0;

    // Write-path resources (tenants with writeFraction > 0 only).
    /** Host buffer of binary i64 values an MWRITE request streams. */
    pcie::Addr writeSrc = 0;
    std::uint64_t writeSrcBytes = 0;
    /** Scratch flash region the serialized text lands in (disjoint
     *  from every read file, so read-object cache entries survive). */
    host::FileExtent writeDst;
};

/** A request's size class: its object instances. Single-SSD runs keep
 *  exactly one; fleet runs spread objectsPerClass across the SSDs. */
struct SizeClass
{
    std::vector<ObjectInstance> objects;
};

/** Instant on the serving driver's own track (breaker transitions,
 *  fallback starts, hybrid placement decisions, shed bounces). */
void
recordServingInstant(const char *name, std::uint32_t tenant,
                     sim::Tick when)
{
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = "host.serving";
        s.name = name;
        s.category = "serving";
        s.begin = when;
        s.end = when;
        s.instant = true;
        s.tenant = tenant;
        sink->record(s);
    }
}

struct ActiveSession
{
    core::InvokeSession session;
    unsigned requestIdx = 0;
    unsigned device = 0;  ///< Which runtime the session belongs to.
};

/** Event-loop entry: what happens next and when. */
struct Event
{
    sim::Tick time = 0;
    std::uint64_t seq = 0;  ///< Deterministic FIFO tie-break.
    enum Kind { kArrival, kStep } kind = kArrival;
    unsigned idx = 0;  ///< Request index / active-session index.

    bool
    operator>(const Event &o) const
    {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

/** Draw a size-class index from the tenant's (normalized) mix. */
unsigned
drawClass(const TenantSpec &tenant, sim::Rng &rng)
{
    double total = 0.0;
    for (double p : tenant.sizeClassProb)
        total += p;
    double u = rng.nextDouble() * total;
    for (unsigned k = 0; k < tenant.sizeClassProb.size(); ++k) {
        u -= tenant.sizeClassProb[k];
        if (u <= 0.0)
            return k;
    }
    return static_cast<unsigned>(tenant.sizeClassProb.size() - 1);
}

/** Draw the object instance within a size class: one extra Rng draw
 *  only when there is a choice to make, so single-object runs keep the
 *  classic draw sequence bit-identical. */
unsigned
drawObject(const ZipfianGenerator *zipf, sim::Rng &rng)
{
    return zipf != nullptr ? zipf->draw(rng) : 0;
}

/** Draw whether the request is an MWRITE serialization: the extra Rng
 *  draw happens only for tenants with writeFraction > 0, so read-only
 *  runs keep the classic draw sequence bit-identical. */
bool
drawWrite(const TenantSpec &tenant, sim::Rng &rng)
{
    return tenant.writeFraction > 0.0 &&
           rng.nextDouble() < tenant.writeFraction;
}

/** Poisson (or on/off-modulated) arrival trace for one tenant. */
std::vector<Request>
genArrivals(const ServingOptions &opts, unsigned tenant_idx,
            const ZipfianGenerator *obj_zipf, sim::Rng &rng)
{
    const TenantSpec &tenant = opts.tenants[tenant_idx];
    const sim::Tick horizon = static_cast<sim::Tick>(
        opts.durationSec * static_cast<double>(sim::kPsPerSec));
    const sim::Tick period = static_cast<sim::Tick>(
        opts.burstPeriodSec * static_cast<double>(sim::kPsPerSec));
    const sim::Tick on_window = static_cast<sim::Tick>(
        static_cast<double>(period) * opts.burstOnFraction);

    // The off-phase rate that keeps the long-run mean at
    // arrivalsPerSec given the boosted on-phase rate.
    const double on_rate = tenant.arrivalsPerSec * opts.burstFactor;
    const double off_rate = std::max(
        0.0, (tenant.arrivalsPerSec -
              on_rate * opts.burstOnFraction) /
                 (1.0 - opts.burstOnFraction));

    std::vector<Request> out;
    double t_ps = 0.0;
    while (true) {
        double rate = tenant.arrivalsPerSec;
        if (opts.bursty) {
            const auto phase = static_cast<sim::Tick>(t_ps) %
                               std::max<sim::Tick>(period, 1);
            rate = phase < on_window ? on_rate : off_rate;
            if (rate <= 0.0) {
                // Skip to the next burst window.
                t_ps += static_cast<double>(period - phase);
                continue;
            }
        }
        const double gap_sec =
            -std::log(1.0 - rng.nextDouble()) / rate;
        t_ps += gap_sec * static_cast<double>(sim::kPsPerSec);
        if (t_ps >= static_cast<double>(horizon))
            break;
        Request r;
        r.arrival = static_cast<sim::Tick>(t_ps);
        r.tenantIdx = tenant_idx;
        r.classIdx = drawClass(tenant, rng);
        r.objIdx = drawObject(obj_zipf, rng);
        r.write = drawWrite(tenant, rng);
        out.push_back(r);
    }
    return out;
}

double
ticksToUs(sim::Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim::kPsPerUs);
}

}  // namespace

const char *
tenantFormatName(TenantFormat f)
{
    switch (f) {
      case TenantFormat::kIntArray:
        return "intarray";
      case TenantFormat::kCsv:
        return "csv";
      case TenantFormat::kJson:
        return "json";
      case TenantFormat::kColumnar:
        return "columnar";
    }
    return "?";
}

bool
tenantFormatFromName(const std::string &name, TenantFormat *out)
{
    if (name == "intarray" || name == "int")
        *out = TenantFormat::kIntArray;
    else if (name == "csv")
        *out = TenantFormat::kCsv;
    else if (name == "json")
        *out = TenantFormat::kJson;
    else if (name == "columnar")
        *out = TenantFormat::kColumnar;
    else
        return false;
    return true;
}

ServingReport
runServing(const ServingOptions &opts)
{
    MORPHEUS_ASSERT(!opts.tenants.empty(), "serving without tenants");
    host::HostSystem sys(opts.sys);
    // One MorpheusRuntime per SSD; the fabric degrades to exactly the
    // classic single-runtime construction when sys.numSsds == 1.
    shard::ShardFabric fabric(sys, opts.shardPolicy);
    fabric.setRecovery(opts.recovery);
    core::StandardImages images = core::StandardImages::make();

    for (const TenantSpec &t : opts.tenants)
        fabric.setTenantWeight(t.id, t.weight);

    const unsigned num_ssds = sys.numSsds();
    const unsigned objs_per_class = std::max(1u, opts.objectsPerClass);
    std::optional<ZipfianGenerator> obj_zipf;
    if (objs_per_class > 1)
        obj_zipf.emplace(objs_per_class, opts.zipfSkew);
    const ZipfianGenerator *zipf_ptr =
        obj_zipf ? &*obj_zipf : nullptr;

    // ---- ingest the object files per (tenant, size class) ------------
    // Per-tenant pushdown descriptor: columnar tenants with pushdown on
    // carry their encoded ScanSpec on every read's MINIT; everyone else
    // keeps an empty vector — and an empty vector produces the exact
    // pre-pushdown MINIT wire encoding.
    std::vector<serde::ScanSpec> tenant_spec(opts.tenants.size());
    std::vector<std::vector<std::uint32_t>> tenant_pushdown(
        opts.tenants.size());
    for (unsigned ti = 0; ti < opts.tenants.size(); ++ti) {
        const TenantSpec &t = opts.tenants[ti];
        if (t.format != TenantFormat::kColumnar)
            continue;
        if (t.pushdown) {
            tenant_spec[ti] = serde::makeSelectivitySpec(
                t.selectivity, t.projectColumns, t.tableColumns);
            tenant_pushdown[ti] = tenant_spec[ti].encode();
        }
        // pushdown off: the default ScanSpec — a full-table scan the
        // applet runs descriptor-less (the full-object baseline).
    }

    std::vector<std::vector<SizeClass>> classes(opts.tenants.size());
    sim::Tick ingest_done = 0;
    for (unsigned ti = 0; ti < opts.tenants.size(); ++ti) {
        const TenantSpec &tenant = opts.tenants[ti];
        MORPHEUS_ASSERT(tenant.sizeClassValues.size() ==
                            tenant.sizeClassProb.size(),
                        "size class values/probabilities mismatch");
        classes[ti].resize(tenant.sizeClassValues.size());
        for (unsigned k = 0; k < tenant.sizeClassValues.size(); ++k) {
            classes[ti][k].objects.resize(objs_per_class);
            for (unsigned o = 0; o < objs_per_class; ++o) {
                ObjectInstance &inst = classes[ti][k].objects[o];
                const std::uint64_t gen_seed =
                    opts.seed + ti * 131 + k + o * 7919;
                std::vector<std::uint8_t> text;
                switch (tenant.format) {
                  case TenantFormat::kIntArray: {
                    const AnyObject obj = genIntArray(
                        gen_seed, tenant.sizeClassValues[k]);
                    text = serializeObject(obj);
                    inst.objectBytes = objectBytes(obj);
                    // Reference parse for the host-fallback conversion
                    // charge.
                    parseObject(ObjectKind::kIntArray, text.data(),
                                text.size(), &inst.cost);
                    break;
                  }
                  case TenantFormat::kCsv: {
                    const AnyObject obj = genCsvTable(
                        gen_seed, tenant.sizeClassValues[k], 8);
                    text = serializeObject(obj);
                    inst.objectBytes = objectBytes(obj);
                    parseObject(ObjectKind::kCsvTable, text.data(),
                                text.size(), &inst.cost);
                    break;
                  }
                  case TenantFormat::kJson: {
                    const AnyObject obj = genJsonRecords(
                        gen_seed, tenant.sizeClassValues[k]);
                    text = serializeObject(obj);
                    inst.objectBytes = objectBytes(obj);
                    parseObject(ObjectKind::kJsonRecords, text.data(),
                                text.size(), &inst.cost);
                    break;
                  }
                  case TenantFormat::kColumnar: {
                    const serde::ColumnarTableObject tab =
                        serde::genColumnarTable(
                            gen_seed, tenant.sizeClassValues[k],
                            tenant.tableColumns);
                    text = tab.toFlash();
                    // Reference scan with the tenant's effective spec
                    // (full scan when pushdown is off): the emitted
                    // size is what the device DMAs out, and the cost
                    // is the host fallback's conversion charge — the
                    // same shared kernel either way.
                    const serde::ScanSpec &spec = tenant_spec[ti];
                    const serde::ScanResult ref = serde::scanTable(
                        text.data(), text.size(), spec);
                    MORPHEUS_ASSERT(ref.ok,
                                    "columnar ingest scan failed");
                    inst.objectBytes = ref.out.size();
                    inst.cost = ref.cost;
                    break;
                  }
                }
                // Single-object classes keep the classic file name so
                // single-SSD runs stay bit-identical.
                std::string name = "serve.t" +
                                   std::to_string(tenant.id) + ".c" +
                                   std::to_string(k);
                if (objs_per_class > 1)
                    name += ".o" + std::to_string(o);
                if (num_ssds > 1)
                    inst.device = fabric.router().shardForKey(name);
                inst.extent =
                    sys.createFileOn(inst.device, name, text);
                ingest_done =
                    std::max(ingest_done, inst.extent.readyAt);
                if (tenant.writeFraction > 0.0) {
                    // MWRITE resources: the binary values a write
                    // request streams through the on-device
                    // serializer, and a scratch flash region (its own
                    // file, disjoint from every read extent) the text
                    // lands in.
                    const serde::IntArrayObject wobj = genIntArray(
                        gen_seed + 0x9E3779B9u,
                        tenant.sizeClassValues[k]);
                    std::vector<std::uint8_t> binary;
                    binary.reserve(wobj.values.size() * 8);
                    for (const auto v : wobj.values) {
                        const auto *p =
                            reinterpret_cast<const std::uint8_t *>(&v);
                        binary.insert(binary.end(), p, p + 8);
                    }
                    inst.writeSrcBytes = binary.size();
                    inst.writeSrc = sys.allocHost(binary.size());
                    sys.mem().store().writeVec(inst.writeSrc, binary);
                    const auto wtext =
                        serializeObject(AnyObject(wobj));
                    inst.writeDst = sys.createFileOn(
                        inst.device, name + ".wdst",
                        std::vector<std::uint8_t>(wtext.size(), 0));
                    ingest_done = std::max(ingest_done,
                                           inst.writeDst.readyAt);
                }
            }
        }
    }

    // ---- generate the request trace ----------------------------------
    std::vector<Request> requests;
    if (opts.closedLoop) {
        // Closed loop: the size-class draws are fixed up front (so the
        // run is deterministic in the seed), but arrival times are
        // assigned at issue — each tenant's next request starts when
        // one of its in-flight requests finishes.
        for (unsigned ti = 0; ti < opts.tenants.size(); ++ti) {
            sim::Rng rng(opts.seed * 1000003u + opts.tenants[ti].id);
            for (std::uint64_t n = 0; n < opts.closedLoopRequests;
                 ++n) {
                Request r;
                r.tenantIdx = ti;
                r.classIdx = drawClass(opts.tenants[ti], rng);
                r.objIdx = drawObject(zipf_ptr, rng);
                r.write = drawWrite(opts.tenants[ti], rng);
                requests.push_back(r);
            }
        }
    } else {
        for (unsigned ti = 0; ti < opts.tenants.size(); ++ti) {
            sim::Rng rng(opts.seed * 1000003u + opts.tenants[ti].id);
            auto trace = genArrivals(opts, ti, zipf_ptr, rng);
            requests.insert(requests.end(), trace.begin(), trace.end());
        }
        // Arrivals start after ingest so admission sees a settled
        // device.
        for (Request &r : requests)
            r.arrival += ingest_done;
        std::stable_sort(requests.begin(), requests.end(),
                         [](const Request &a, const Request &b) {
                             return a.arrival < b.arrival;
                         });
    }

    // Per-request applet selection by the tenant's format (the write
    // path always runs the int64 serializer). All-int-array mixes
    // resolve to the same image reference every request, exactly as
    // the pre-format hoisted lookup did.
    auto image_for = [&](const TenantSpec &t,
                         bool write) -> const core::StorageAppImage & {
        if (write)
            return images.int64Serializer;
        switch (t.format) {
          case TenantFormat::kIntArray:
            return imageFor(ObjectKind::kIntArray, images);
          case TenantFormat::kCsv:
            return imageFor(ObjectKind::kCsvTable, images);
          case TenantFormat::kJson:
            return imageFor(ObjectKind::kJsonRecords, images);
          case TenantFormat::kColumnar:
            return images.columnarScan;
        }
        return imageFor(ObjectKind::kIntArray, images);
    };

    // ---- event loop ---------------------------------------------------
    // Fault injection covers only the measured loop (ingest ran clean);
    // the injector stays installed through metrics federation below so
    // sys.faults.* is visible there. An inactive plan installs nothing,
    // keeping the fault-free run bit-identical.
    std::optional<sim::FaultInjector> injector;
    std::optional<sim::ScopedFaultInjector> fault_scope;
    if (opts.faults.active()) {
        injector.emplace(opts.faults);
        fault_scope.emplace(&*injector);
    }

    // ---- observability: flight recorder + attribution + timeline -----
    // The recorder becomes THE trace sink for the measured loop (tee-ing
    // to its downstream). A breakdown without an explicit recorder gets
    // a private one whose downstream is whatever sink was already
    // attached, so existing trace consumers keep seeing every span.
    // Everything here observes simulated time without perturbing it:
    // the run's results stay bit-identical with all of it enabled.
    std::optional<obs::FlightRecorder> local_recorder;
    obs::FlightRecorder *recorder = opts.flightRecorder;
    if (recorder == nullptr && opts.breakdown) {
        obs::FlightRecorderConfig frc;
        frc.downstream = obs::traceSink();
        local_recorder.emplace(frc);
        recorder = &*local_recorder;
    }
    // Attach/detach by hand instead of an optional ScopedTraceSink:
    // GCC 12's -Wmaybe-uninitialized misfires on the optional's
    // destructor path at this inlining depth.
    obs::TraceSink *const prev_sink = obs::traceSink();
    if (recorder != nullptr)
        obs::setTraceSink(recorder);

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;
    std::uint64_t seq = 0;

    // Closed-loop issue bookkeeping: each tenant's request indices in
    // issue order, and the cursor to its next unissued request.
    std::vector<std::vector<unsigned>> loop_queue(opts.tenants.size());
    std::vector<std::size_t> loop_next(opts.tenants.size(), 0);
    if (opts.closedLoop) {
        for (unsigned i = 0; i < requests.size(); ++i)
            loop_queue[requests[i].tenantIdx].push_back(i);
    }
    // Issue the tenant's next request at @p when (closed loop only;
    // called from every terminal outcome so the in-flight count stays
    // at the configured concurrency until the quota runs out).
    auto issue_next = [&](unsigned tenant_idx, sim::Tick when) {
        if (!opts.closedLoop)
            return;
        std::size_t &cursor = loop_next[tenant_idx];
        if (cursor >= loop_queue[tenant_idx].size())
            return;
        const unsigned req_idx = loop_queue[tenant_idx][cursor++];
        requests[req_idx].arrival = when;
        events.push(Event{when, seq++, Event::kArrival, req_idx});
    };

    if (opts.closedLoop) {
        for (unsigned ti = 0; ti < opts.tenants.size(); ++ti)
            for (unsigned c = 0; c < opts.closedLoopConcurrency; ++c)
                issue_next(ti, ingest_done);
    } else {
        for (unsigned i = 0; i < requests.size(); ++i)
            events.push(
                Event{requests[i].arrival, seq++, Event::kArrival, i});
    }

    std::vector<ActiveSession> active;
    std::vector<unsigned> free_slots;
    std::vector<unsigned> parked;  // FIFO of request indices

    struct Outcome
    {
        bool completed = false;
        bool rejected = false;
        bool fellBack = false;
        /** Valid when fellBack: which trigger host-routed it. */
        host::HostExecReason fallbackReason =
            host::HostExecReason::kBreaker;
        bool split = false;
        bool shedRejected = false;
        std::uint64_t retries = 0;
        std::uint64_t dsramBounces = 0;
        std::uint64_t overloadBounces = 0;
        std::uint64_t shedBounces = 0;
        std::uint64_t deviceFailures = 0;
        bool servedFromCache = false;
        sim::Tick latency = 0;
        std::uint64_t servedBytes = 0;
    };
    std::vector<Outcome> outcomes(requests.size());
    std::vector<sched::CircuitBreaker> breakers(
        opts.tenants.size(),
        sched::CircuitBreaker(opts.breakerThreshold,
                              opts.breakerProbeEvery));
    // Whether the request's latest device-path attempt was a half-open
    // probe (a failed probe's rescue counts under the probe reason).
    std::vector<char> is_probe(requests.size(), 0);

    // The host-execution engine serves breaker fallbacks always; with
    // hybrid enabled it also takes overload spill and split halves,
    // placed by one policy per device (per-device hysteresis state).
    host::HostExecEngine host_exec(sys, opts.hybrid.hostCostScale);
    std::vector<sched::HybridPlacementPolicy> hybrid_pol(
        num_ssds, sched::HybridPlacementPolicy(opts.hybrid));
    // In-flight split state: device-prefix bytes and the host half's
    // completion tick, indexed by request (hybrid runs only).
    std::vector<std::uint64_t> split_cut;
    std::vector<sim::Tick> split_host_done;
    if (opts.hybrid.enabled) {
        split_cut.assign(requests.size(), 0);
        split_host_done.assign(requests.size(), 0);
    }
    sim::Tick last_done = ingest_done;

    // Per-request observability state (sized only with a recorder, so
    // the uninstrumented path allocates nothing).
    std::vector<std::vector<obs::TraceId>> req_traces;
    std::vector<obs::Attribution> req_attr;
    std::vector<char> req_attributed;
    std::vector<sim::Tick> park_begin;
    if (recorder != nullptr) {
        req_traces.resize(requests.size());
        req_attr.resize(requests.size());
        req_attributed.assign(requests.size(), 0);
        park_begin.assign(requests.size(), 0);
    }

    // Running terminal-outcome counters for timeline sampling.
    obs::Timeline *tl = opts.timeline;
    std::vector<std::uint64_t> tenant_done_run(opts.tenants.size(), 0);
    std::uint64_t completed_run = 0, rejected_run = 0, lost_run = 0,
                  fallbacks_run = 0;

    // Accumulate the trace ids a request's driver commands consumed
    // (across every bounce/retry attempt).
    auto note_traces = [&](unsigned req_idx,
                           const std::vector<obs::TraceId> &ids) {
        if (recorder == nullptr)
            return;
        req_traces[req_idx].insert(req_traces[req_idx].end(),
                                   ids.begin(), ids.end());
    };

    // Trace id the host-side spans of a request ride under: the last
    // device-command id when the request touched the device, else a
    // synthetic id in a device range (0xFF) no fleet reaches — so a
    // host-only request's spans are still collectible by id.
    std::uint32_t host_trace_seq = 0;
    auto host_trace = [&](unsigned req_idx) -> obs::TraceId {
        if (recorder == nullptr)
            return 0;
        if (!req_traces[req_idx].empty())
            return req_traces[req_idx].back();
        const obs::TraceId id =
            (obs::TraceId{0xFFu} << 24) | ++host_trace_seq;
        req_traces[req_idx].push_back(id);
        return id;
    };

    // Synthetic host-side backoff span: the wait between a bounce and
    // the re-submission is real latency the device never sees; naming
    // it keeps the critical-path attribution gap-free.
    auto record_retry_wait = [&](unsigned req_idx, sim::Tick begin,
                                 sim::Tick end) {
        if (recorder == nullptr || end <= begin ||
            req_traces[req_idx].empty()) {
            return;
        }
        obs::Span s;
        s.track = "host.serving";
        s.name = "retry_wait";
        s.category = "serving";
        s.begin = begin;
        s.end = end;
        s.tenant = opts.tenants[requests[req_idx].tenantIdx].id;
        s.trace = req_traces[req_idx].back();
        recorder->record(s);
    };

    // Terminal outcome: pull the request's spans out of the ring,
    // derive the stage decomposition for completed requests, and offer
    // the full trace for slowest-K / failed retention.
    auto finish_observability = [&](unsigned req_idx, bool failed,
                                    sim::Tick done) {
        if (recorder == nullptr)
            return;
        const Request &req = requests[req_idx];
        const Outcome &out = outcomes[req_idx];
        std::vector<obs::Span> spans =
            recorder->collect(req_traces[req_idx]);
        const sim::Tick end =
            out.completed ? req.arrival + out.latency : done;
        if (!failed && out.completed) {
            req_attr[req_idx] =
                obs::attributeSpans(spans, req.arrival, end);
            req_attributed[req_idx] = 1;
        }
        obs::RequestMeta meta;
        meta.requestId = req_idx;
        meta.tenant = opts.tenants[req.tenantIdx].id;
        meta.begin = req.arrival;
        meta.end = end;
        // Requests that saw a device failure (including the ones that
        // tripped the breaker and were rescued by the host path) are
        // always retention-worthy.
        meta.failed = failed || out.deviceFailures > 0;
        recorder->offer(meta, std::move(spans));
    };

    // Re-enqueue everything parked as fresh arrivals at @p when: a
    // completion is the retry signal a hint-less busy status asks the
    // host to wait for (hinted bounces are timed through the heap
    // instead).
    auto release_parked = [&](sim::Tick when) {
        std::vector<unsigned> waiting;
        waiting.swap(parked);
        for (unsigned req_idx : waiting) {
            if (recorder != nullptr)
                record_retry_wait(req_idx, park_begin[req_idx], when);
            events.push(Event{when, seq++, Event::kArrival, req_idx});
        }
    };

    // The paper's baseline path (Fig 1), via the host-execution
    // engine: host read()s the raw text in chunks and converts on the
    // CPU. The breaker uses it to keep availability at 100% while the
    // device path is faulting; the hybrid policy uses it as spill
    // capacity past device saturation.
    auto fallback_request = [&](unsigned req_idx, sim::Tick when,
                                host::HostExecReason reason) {
        const Request &req = requests[req_idx];
        const ObjectInstance &inst =
            classes[req.tenantIdx][req.classIdx].objects[req.objIdx];
        // Breaker-path rescues keep the classic tenant-pinned core;
        // overload spill spreads over the least-loaded core.
        const unsigned core =
            reason == host::HostExecReason::kOverload
                ? host_exec.leastLoadedCore(when)
                : req.tenantIdx % sys.cpu().config().cores;

        host::HostExecRequest hreq;
        // A write request's rescue is the baseline host serialization:
        // the CPU formats the values and a plain write lands the text,
        // modeled with the same chunked transfer+convert charge over
        // the destination region.
        hreq.extent = req.write ? inst.writeDst : inst.extent;
        // A failed split session is rescued over its device prefix
        // only: the host half of the remainder already ran.
        const std::uint64_t cut =
            !req.write && opts.hybrid.enabled ? split_cut[req_idx] : 0;
        if (cut > 0)
            hreq.extent.sizeBytes = cut;
        hreq.fileBytes = hreq.extent.sizeBytes;
        if (cut > 0)
            hreq.fileBytes = inst.extent.sizeBytes;
        hreq.objectBytes =
            req.write ? inst.writeSrcBytes : inst.objectBytes;
        hreq.cost = inst.cost;
        hreq.device = inst.device;
        hreq.tenant = opts.tenants[req.tenantIdx].id;
        hreq.reason = reason;
        hreq.trace = host_trace(req_idx);
        sim::Tick done = host_exec.execute(hreq, core, when);
        if (cut > 0) {
            done = std::max(done, split_host_done[req_idx]);
            split_cut[req_idx] = 0;
        }

        recordServingInstant("fallback",
                             opts.tenants[req.tenantIdx].id, when);
        Outcome &out = outcomes[req_idx];
        out.completed = true;
        out.fellBack = true;
        out.fallbackReason = reason;
        out.latency = done - req.arrival;
        out.servedBytes =
            req.write ? inst.writeSrcBytes : inst.objectBytes;
        last_done = std::max(last_done, done);
        ++completed_run;
        ++fallbacks_run;
        ++tenant_done_run[req.tenantIdx];
        finish_observability(req_idx, /*failed=*/false, done);
        release_parked(done);
        issue_next(req.tenantIdx, done);
    };

    // A device-path attempt for req_idx failed terminally at `when`.
    auto device_failure = [&](unsigned req_idx, sim::Tick when) {
        const Request &req = requests[req_idx];
        Outcome &out = outcomes[req_idx];
        ++out.deviceFailures;
        if (breakers[req.tenantIdx].onDeviceFailure()) {
            recordServingInstant("breaker_open",
                                 opts.tenants[req.tenantIdx].id, when);
        }
        last_done = std::max(last_done, when);
        if (opts.breakerThreshold > 0) {
            // Rescue the request on the host path: completion stays
            // at 100% even while the device is faulting. A failed
            // half-open probe's rescue is counted under its own
            // reason so the breaker's duty cycle is visible.
            fallback_request(req_idx, when,
                             is_probe[req_idx]
                                 ? host::HostExecReason::kProbe
                                 : host::HostExecReason::kBreaker);
        } else {
            // The recovery-off ablation: the request is lost (neither
            // completed nor rejected) — still a terminal outcome for
            // the closed loop's in-flight accounting.
            ++lost_run;
            finish_observability(req_idx, /*failed=*/true, when);
            issue_next(req.tenantIdx, when);
        }
    };

    auto start_request = [&](unsigned req_idx, sim::Tick when) {
        const Request &req = requests[req_idx];
        const TenantSpec &tenant = opts.tenants[req.tenantIdx];
        const ObjectInstance &inst =
            classes[req.tenantIdx][req.classIdx].objects[req.objIdx];
        core::MorpheusRuntime &runtime = fabric.runtime(inst.device);

        // The breaker outranks placement: an open breaker's requests
        // are host-routed under the breaker reason (except periodic
        // half-open probes, which always test the device), and never
        // reach the hybrid policy — no double-routing.
        const sched::CircuitBreaker::Route br_route =
            breakers[req.tenantIdx].route();
        is_probe[req_idx] =
            br_route == sched::CircuitBreaker::Route::kProbe;
        if (br_route == sched::CircuitBreaker::Route::kHost) {
            fallback_request(req_idx, when,
                             host::HostExecReason::kBreaker);
            return;
        }

        // Hybrid placement: a closed-breaker request may be spilled
        // to the host, split across both executors, or shed, by live
        // device pressure vs. modeled host backlog.
        std::uint64_t cut = 0;
        if (opts.hybrid.enabled && !req.write &&
            br_route == sched::CircuitBreaker::Route::kDevice) {
            sched::HybridSignals sig;
            sig.backlogBytes = fabric.deviceBacklogBytes(inst.device);
            sig.queueDepth = fabric.deviceQueueDepth(inst.device);
            sig.dsramBounces = fabric.deviceDsramBounces(inst.device);
            sig.hostBacklogUs = host_exec.minBacklogUs(when);
            sig.requestBytes = inst.extent.sizeBytes;
            const sched::PlacementDecision pd =
                hybrid_pol[inst.device].decide(sig, when);
            if (pd.placement == sched::ExecPlacement::kHost) {
                recordServingInstant("place_host", tenant.id, when);
                fallback_request(req_idx, when,
                                 host::HostExecReason::kOverload);
                return;
            }
            if (pd.placement == sched::ExecPlacement::kShed) {
                Outcome &out = outcomes[req_idx];
                ++out.shedBounces;
                recordServingInstant("shed_bounce", tenant.id, when);
                if (out.shedBounces > opts.hybrid.shedMaxBounces) {
                    // Deterministic shedding: past the bounce budget
                    // the request is rejected outright instead of
                    // feeding an unbounded retry queue.
                    out.shedRejected = true;
                    out.rejected = true;
                    last_done = std::max(last_done, when);
                    ++rejected_run;
                    finish_observability(req_idx, /*failed=*/true,
                                         when);
                    issue_next(req.tenantIdx, when);
                    return;
                }
                ++out.retries;
                // Linear backoff over the request's bounce count so
                // repeated sheds spread re-offered load out.
                const sim::Tick resume =
                    when + sim::Tick(pd.retryAfterUs) *
                               sim::kPsPerUs *
                               sim::Tick(out.shedBounces);
                if (recorder != nullptr) {
                    host_trace(req_idx);
                    record_retry_wait(req_idx, when, resume);
                }
                events.push(
                    Event{resume, seq++, Event::kArrival, req_idx});
                return;
            }
            if (pd.placement == sched::ExecPlacement::kSplit) {
                cut = static_cast<std::uint64_t>(
                    static_cast<double>(inst.extent.sizeBytes) *
                    pd.deviceShare);
                if (cut == 0 || cut >= inst.extent.sizeBytes)
                    cut = 0;  // degenerate split: plain device path
                else
                    recordServingInstant("place_split", tenant.id,
                                         when);
            }
        }

        core::InvokeOptions iopts;
        iopts.hostCore = req.tenantIdx % sys.cpu().config().cores;
        iopts.chunkBlocks = opts.chunkBlocks;
        iopts.flushThreshold = opts.flushThreshold;
        iopts.tenantId = tenant.id;
        // A split streams only the prefix sub-extent through the
        // device (MINIT declares the prefix length, MREAD chunks are
        // byte-precise, and the int-array parser tolerates the
        // truncated tail); the host converts the remainder
        // concurrently once the MINIT is accepted.
        host::FileExtent dev_extent = inst.extent;
        if (req.write) {
            // MWRITE session: the stream declares the binary source
            // length; chunks land behind the scratch region's base.
            iopts.serialize = true;
            iopts.writeSrc = inst.writeSrc;
            iopts.writeDstByte = inst.writeDst.startByte;
            dev_extent = inst.writeDst;
            dev_extent.sizeBytes = inst.writeSrcBytes;
        } else {
            iopts.pushdown = tenant_pushdown[req.tenantIdx];
            if (cut > 0)
                dev_extent.sizeBytes = cut;
        }
        const core::DmaTarget target =
            req.write ? core::DmaTarget{inst.writeSrc, false}
                      : runtime.hostTarget(inst.objectBytes);
        const core::MsStream stream =
            runtime.streamCreate(dev_extent, when, iopts.hostCore);

        core::InvokeSession s = runtime.beginInvoke(
            image_for(tenant, req.write), stream, target, when, iopts);
        if (!s.accepted) {
            note_traces(req_idx, s.traceIds);
            if (s.failed) {
                // MINIT died on an injected fault with the retry
                // budget spent: a device failure, not a bounce.
                device_failure(req_idx, s.result.done);
                return;
            }
            if (s.retry) {
                ++outcomes[req_idx].retries;
                if (s.minitStatus == nvme::Status::kDsramExhausted)
                    ++outcomes[req_idx].dsramBounces;
                if (s.minitStatus == nvme::Status::kOverloaded) {
                    ++outcomes[req_idx].overloadBounces;
                    if (opts.hybrid.enabled) {
                        // The device named its condition with an
                        // explicit kOverloaded: spill to the host now
                        // instead of re-queueing on the device.
                        fallback_request(
                            req_idx, s.result.done,
                            host::HostExecReason::kOverload);
                        return;
                    }
                }
                if (s.retryAfterUs > 0) {
                    // Honor the completion's retry-after hint instead
                    // of waiting for an unrelated completion.
                    const sim::Tick resume =
                        s.result.done +
                        sim::Tick(s.retryAfterUs) * sim::kPsPerUs;
                    record_retry_wait(req_idx, s.result.done, resume);
                    events.push(
                        Event{resume, seq++, Event::kArrival, req_idx});
                } else {
                    if (recorder != nullptr)
                        park_begin[req_idx] = s.result.done;
                    parked.push_back(req_idx);
                }
            } else {
                outcomes[req_idx].rejected = true;
                last_done = std::max(last_done, s.result.done);
                ++rejected_run;
                finish_observability(req_idx, /*failed=*/true,
                                     s.result.done);
                issue_next(req.tenantIdx, s.result.done);
            }
            return;
        }
        if (cut > 0) {
            // MINIT accepted the prefix: charge the host half of the
            // split now, concurrent (in simulated time) with the
            // device stream. A bounced MINIT never reaches here, so a
            // bounce costs no host work.
            split_cut[req_idx] = cut;
            host::HostExecRequest hreq;
            hreq.extent = inst.extent;
            hreq.extent.startByte += cut;
            hreq.extent.sizeBytes -= cut;
            hreq.fileBytes = inst.extent.sizeBytes;
            hreq.objectBytes = inst.objectBytes;
            hreq.cost = inst.cost;
            hreq.device = inst.device;
            hreq.tenant = tenant.id;
            hreq.reason = host::HostExecReason::kSplit;
            hreq.trace = host_trace(req_idx);
            split_host_done[req_idx] = host_exec.execute(
                hreq, host_exec.leastLoadedCore(when), when);
            outcomes[req_idx].split = true;
        }
        unsigned slot;
        if (!free_slots.empty()) {
            slot = free_slots.back();
            free_slots.pop_back();
            active[slot] =
                ActiveSession{std::move(s), req_idx, inst.device};
        } else {
            slot = static_cast<unsigned>(active.size());
            active.push_back(
                ActiveSession{std::move(s), req_idx, inst.device});
        }
        events.push(Event{active[slot].session.now, seq++, Event::kStep,
                          slot});
    };

    // Timeline schema + cadence anchored at the first arrival.
    if (tl != nullptr) {
        std::vector<std::string> cols{
            "inflight",        "parked",          "completed",
            "rejected",        "lost",            "fallbacks",
            "backlog_bytes",   "dsram_used_bytes", "cache_hits",
            "cache_misses",    "driver_retries",  "driver_timeouts",
            "faults"};
        for (const TenantSpec &t : opts.tenants)
            cols.push_back("tenant" + std::to_string(t.id) +
                           "_completed");
        tl->setColumns(std::move(cols));
        tl->start(opts.closedLoop || requests.empty()
                      ? ingest_done
                      : requests.front().arrival);
    }
    // One gauge row: loop state + device occupancy/cache/fault reads.
    auto sample_row = [&]() {
        std::vector<double> v;
        v.push_back(
            static_cast<double>(active.size() - free_slots.size()));
        v.push_back(static_cast<double>(parked.size()));
        v.push_back(static_cast<double>(completed_run));
        v.push_back(static_cast<double>(rejected_run));
        v.push_back(static_cast<double>(lost_run));
        v.push_back(static_cast<double>(fallbacks_run));
        std::uint64_t backlog = 0, dsram = 0, hits = 0, misses = 0,
                      retries = 0, timeouts = 0;
        for (unsigned d = 0; d < num_ssds; ++d) {
            auto &ssd = sys.ssd(d);
            for (unsigned c = 0; c < ssd.numCores(); ++c) {
                backlog += ssd.scheduler().dispatcher().pendingBytes(c);
                dsram += ssd.core(c).dsramUsed();
            }
            hits += ssd.objectCache().hits();
            misses += ssd.objectCache().misses();
            retries += sys.nvmeDriver(d).retriesIssued();
            timeouts += sys.nvmeDriver(d).timeoutsSynthesized();
        }
        v.push_back(static_cast<double>(backlog));
        v.push_back(static_cast<double>(dsram));
        v.push_back(static_cast<double>(hits));
        v.push_back(static_cast<double>(misses));
        v.push_back(static_cast<double>(retries));
        v.push_back(static_cast<double>(timeouts));
        v.push_back(injector ? static_cast<double>(
                                   injector->mediaErrors() +
                                   injector->dmaFaults() +
                                   injector->appCrashes() +
                                   injector->appHangs())
                             : 0.0);
        for (std::uint64_t t : tenant_done_run)
            v.push_back(static_cast<double>(t));
        return v;
    };

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        if (tl != nullptr) {
            // Catch the cadence up to this event: rows land at exact
            // interval boundaries with the state as of the boundary.
            while (tl->due(ev.time))
                tl->record(sample_row());
        }
        if (ev.kind == Event::kArrival) {
            start_request(ev.idx, ev.time);
            continue;
        }
        ActiveSession &as = active[ev.idx];
        core::MorpheusRuntime &runtime = fabric.runtime(as.device);
        if (!as.session.streamDone() && !as.session.failed) {
            const sim::Tick next = runtime.stepInvoke(as.session);
            if (!as.session.streamDone() && !as.session.failed) {
                events.push(Event{next, seq++, Event::kStep, ev.idx});
                continue;
            }
        }
        const unsigned req_idx = as.requestIdx;
        const core::InvokeResult result =
            as.session.failed ? runtime.abortInvoke(as.session)
                              : runtime.finishInvoke(as.session);
        note_traces(req_idx, as.session.traceIds);
        free_slots.push_back(ev.idx);
        sched::CircuitBreaker &br =
            breakers[requests[req_idx].tenantIdx];
        if (result.failed) {
            device_failure(req_idx, result.done);
            release_parked(result.done);
            continue;
        }
        if (br.onDeviceSuccess()) {
            // A successful device-path probe: the device healed.
            recordServingInstant(
                "breaker_close",
                opts.tenants[requests[req_idx].tenantIdx].id,
                result.done);
        }
        Outcome &out = outcomes[req_idx];
        sim::Tick term = result.done;
        std::uint64_t served = result.objectBytes;
        if (requests[req_idx].write) {
            // A serialize session delivers nothing to the host; the
            // served volume is the binary stream it pushed down.
            const Request &rq = requests[req_idx];
            served = classes[rq.tenantIdx][rq.classIdx]
                         .objects[rq.objIdx]
                         .writeSrcBytes;
        }
        if (opts.hybrid.enabled && split_cut[req_idx] > 0) {
            // A split request finishes when BOTH halves have: the
            // device's prefix stream and the host's concurrent
            // remainder. The whole object counts as served.
            term = std::max(term, split_host_done[req_idx]);
            const Request &rq = requests[req_idx];
            served = classes[rq.tenantIdx][rq.classIdx]
                         .objects[rq.objIdx]
                         .objectBytes;
            split_cut[req_idx] = 0;
        }
        out.completed = true;
        out.servedFromCache = result.servedFromCache;
        out.latency = term - requests[req_idx].arrival;
        out.servedBytes = served;
        last_done = std::max(last_done, term);
        ++completed_run;
        ++tenant_done_run[requests[req_idx].tenantIdx];
        finish_observability(req_idx, /*failed=*/false, term);
        release_parked(term);
        issue_next(requests[req_idx].tenantIdx, term);
    }
    MORPHEUS_ASSERT(parked.empty(),
                    "parked requests with no active session left");
    if (tl != nullptr) {
        // Close the series with one row at or past the last event so
        // the final counter state is visible in the export.
        while (tl->due(last_done))
            tl->record(sample_row());
        tl->record(sample_row());
    }
    // Detach the recorder before teardown; retained traces and the
    // per-request attributions survive in `recorder`/`req_attr`.
    if (recorder != nullptr)
        obs::setTraceSink(prev_sink);

    // ---- aggregate ----------------------------------------------------
    ServingReport report;
    LatencyTally all_lat;
    std::vector<double> fairness_x;
    sim::Tick first_arrival =
        opts.closedLoop || requests.empty() ? ingest_done
                                            : requests.front().arrival;

    // Derive the per-stage summary over @p idx (attributed request
    // indices): mean stage ticks and the p99-ranked request's exact
    // decomposition (which sums to that request's latency).
    auto summarizeStages = [&](std::vector<unsigned> idx,
                               std::array<double, obs::kNumStages> *mean,
                               std::array<double, obs::kNumStages> *p99,
                               std::uint64_t *count) {
        *count = idx.size();
        if (idx.empty())
            return;
        obs::Attribution sum;
        for (const unsigned i : idx)
            sum += req_attr[i];
        for (std::size_t s = 0; s < obs::kNumStages; ++s) {
            (*mean)[s] = ticksToUs(sum.ticks[s]) /
                         static_cast<double>(idx.size());
        }
        std::sort(idx.begin(), idx.end(),
                  [&](unsigned a, unsigned b) {
                      if (outcomes[a].latency != outcomes[b].latency)
                          return outcomes[a].latency <
                                 outcomes[b].latency;
                      return a < b;
                  });
        const auto rank = std::min<std::size_t>(
            idx.size() - 1,
            static_cast<std::size_t>(std::ceil(
                0.99 * static_cast<double>(idx.size()))) -
                1);
        const obs::Attribution &a = req_attr[idx[rank]];
        for (std::size_t s = 0; s < obs::kNumStages; ++s)
            (*p99)[s] = ticksToUs(a.ticks[s]);
    };
    std::vector<unsigned> all_attr_idx;

    for (unsigned ti = 0; ti < opts.tenants.size(); ++ti) {
        const TenantSpec &tenant = opts.tenants[ti];
        TenantReport tr;
        tr.id = tenant.id;
        tr.weight = tenant.weight;
        tr.format = tenant.format;
        if (opts.slo.enabled) {
            tr.sloTargetUs = tenant.sloTargetUs > 0.0
                                 ? tenant.sloTargetUs
                                 : opts.slo.targetUs;
        }
        // Burn windows: window -> (completions, violations), keyed by
        // completion time relative to the first arrival.
        std::map<std::uint64_t,
                 std::pair<std::uint64_t, std::uint64_t>>
            slo_windows;
        std::vector<unsigned> attr_idx;
        LatencyTally lat;
        for (unsigned i = 0; i < requests.size(); ++i) {
            if (requests[i].tenantIdx != ti)
                continue;
            ++tr.submitted;
            tr.retries += outcomes[i].retries;
            tr.dsramBounces += outcomes[i].dsramBounces;
            tr.overloadBounces += outcomes[i].overloadBounces;
            tr.shedBounces += outcomes[i].shedBounces;
            tr.deviceFailures += outcomes[i].deviceFailures;
            if (outcomes[i].fellBack) {
                ++tr.fallbacks;
                switch (outcomes[i].fallbackReason) {
                case host::HostExecReason::kBreaker:
                    ++tr.fallbackBreaker;
                    break;
                case host::HostExecReason::kProbe:
                    ++tr.fallbackProbe;
                    break;
                case host::HostExecReason::kOverload:
                    ++tr.fallbackOverload;
                    break;
                case host::HostExecReason::kSplit:
                    break;  // split halves are not fallbacks
                }
            }
            if (outcomes[i].rejected) {
                ++tr.rejected;
                if (outcomes[i].shedRejected)
                    ++tr.shedRejected;
                continue;
            }
            if (!outcomes[i].completed) {
                ++tr.lost;
                continue;
            }
            ++tr.completed;
            if (outcomes[i].split && !outcomes[i].fellBack)
                ++tr.splitRequests;
            if (outcomes[i].servedFromCache)
                ++tr.cacheHits;
            if (requests[i].write) {
                ++tr.writes;
                tr.writeBytes += outcomes[i].servedBytes;
            }
            tr.servedBytes += outcomes[i].servedBytes;
            const double us = ticksToUs(outcomes[i].latency);
            lat.sample(us);
            all_lat.sample(us);
            if (recorder != nullptr && req_attributed[i]) {
                attr_idx.push_back(i);
                all_attr_idx.push_back(i);
            }
            if (opts.slo.enabled && opts.slo.windowUs > 0.0) {
                const sim::Tick done =
                    requests[i].arrival + outcomes[i].latency;
                const double rel_us = ticksToUs(
                    done > first_arrival ? done - first_arrival : 0);
                auto &[cnt, viol] = slo_windows[static_cast<
                    std::uint64_t>(rel_us / opts.slo.windowUs)];
                ++cnt;
                if (us > tr.sloTargetUs) {
                    ++viol;
                    ++tr.sloViolations;
                }
            }
        }
        if (opts.slo.enabled) {
            for (const auto &[w, cv] : slo_windows) {
                const double frac =
                    static_cast<double>(cv.second) /
                    static_cast<double>(cv.first);
                if (frac > 1.0 - opts.slo.objective)
                    ++tr.sloBadWindows;
                else
                    ++tr.sloGoodWindows;
            }
            if (tr.completed > 0 && opts.slo.objective < 1.0) {
                tr.sloBurnRate =
                    (static_cast<double>(tr.sloViolations) /
                     static_cast<double>(tr.completed)) /
                    (1.0 - opts.slo.objective);
            }
        }
        summarizeStages(std::move(attr_idx), &tr.stageMeanUs,
                        &tr.stageP99Us, &tr.attributed);
        tr.cacheHitRate =
            tr.completed ? static_cast<double>(tr.cacheHits) /
                               static_cast<double>(tr.completed)
                         : 0.0;
        tr.meanUs = lat.mean();
        tr.maxUs = lat.max();
        tr.p50Us = lat.samples() ? lat.quantile(0.50) : 0.0;
        tr.p95Us = lat.samples() ? lat.quantile(0.95) : 0.0;
        tr.p99Us = lat.samples() ? lat.quantile(0.99) : 0.0;
        tr.p999Us = lat.samples() ? lat.quantile(0.999) : 0.0;
        report.submitted += tr.submitted;
        report.completed += tr.completed;
        report.rejected += tr.rejected;
        report.deviceFailures += tr.deviceFailures;
        report.fallbacks += tr.fallbacks;
        report.fallbackBreaker += tr.fallbackBreaker;
        report.fallbackOverload += tr.fallbackOverload;
        report.fallbackProbe += tr.fallbackProbe;
        report.splitRequests += tr.splitRequests;
        report.overloadBounces += tr.overloadBounces;
        report.shedBounces += tr.shedBounces;
        report.shedRejected += tr.shedRejected;
        report.lost += tr.lost;
        report.writes += tr.writes;
        report.writeBytes += tr.writeBytes;
        report.cacheHits += tr.cacheHits;
        fairness_x.push_back(static_cast<double>(tr.servedBytes) /
                             tenant.weight);
        report.tenants.push_back(tr);
    }

    report.meanUs = all_lat.mean();
    report.maxUs = all_lat.max();
    report.p50Us = all_lat.samples() ? all_lat.quantile(0.50) : 0.0;
    report.p95Us = all_lat.samples() ? all_lat.quantile(0.95) : 0.0;
    report.p99Us = all_lat.samples() ? all_lat.quantile(0.99) : 0.0;
    report.p999Us = all_lat.samples() ? all_lat.quantile(0.999) : 0.0;
    summarizeStages(std::move(all_attr_idx), &report.stageMeanUs,
                    &report.stageP99Us, &report.attributed);

    double sum = 0.0, sum_sq = 0.0;
    for (double x : fairness_x) {
        sum += x;
        sum_sq += x * x;
    }
    report.jainFairness =
        sum_sq > 0.0 ? (sum * sum) /
                           (static_cast<double>(fairness_x.size()) *
                            sum_sq)
                     : 1.0;

    if (opts.hybrid.enabled) {
        for (const sched::HybridPlacementPolicy &pol : hybrid_pol) {
            for (unsigned p = 0; p < sched::kNumPlacements; ++p)
                report.hybridDecisions[p] += pol.decisions(
                    static_cast<sched::ExecPlacement>(p));
            report.hybridFlips += pol.flips();
        }
    }

    report.makespan = last_done - first_arrival;
    report.throughputPerSec =
        report.makespan
            ? static_cast<double>(report.completed) /
                  (static_cast<double>(report.makespan) /
                   static_cast<double>(sim::kPsPerSec))
            : 0.0;
    for (unsigned d = 0; d < num_ssds; ++d) {
        report.migrations +=
            sys.ssd(d).scheduler().dispatcher().migrations();
        report.drrDelays +=
            sys.ssd(d).scheduler().arbiter().dataDelays();
        report.driverRetries += sys.nvmeDriver(d).retriesIssued();
        report.driverTimeouts +=
            sys.nvmeDriver(d).timeoutsSynthesized();
    }

    // ---- per-shard view (fleet runs only) ----------------------------
    if (num_ssds > 1) {
        std::vector<LatencyTally> shard_lat(num_ssds);
        report.shards.resize(num_ssds);
        for (unsigned d = 0; d < num_ssds; ++d)
            report.shards[d].device = d;
        for (unsigned i = 0; i < requests.size(); ++i) {
            const Request &req = requests[i];
            const ObjectInstance &inst =
                classes[req.tenantIdx][req.classIdx]
                    .objects[req.objIdx];
            ShardReport &sr = report.shards[inst.device];
            ++sr.requests;
            if (!outcomes[i].completed)
                continue;
            ++sr.completed;
            sr.servedBytes += outcomes[i].servedBytes;
            shard_lat[inst.device].sample(
                ticksToUs(outcomes[i].latency));
        }
        for (unsigned d = 0; d < num_ssds; ++d) {
            ShardReport &sr = report.shards[d];
            const LatencyTally &lat = shard_lat[d];
            sr.meanUs = lat.mean();
            sr.maxUs = lat.max();
            sr.p50Us = lat.samples() ? lat.quantile(0.50) : 0.0;
            sr.p95Us = lat.samples() ? lat.quantile(0.95) : 0.0;
            sr.p99Us = lat.samples() ? lat.quantile(0.99) : 0.0;
            sr.p999Us = lat.samples() ? lat.quantile(0.999) : 0.0;
        }
        // Name the straggler: the shard whose tail holds everyone back.
        double worst = -1.0;
        for (const ShardReport &sr : report.shards) {
            if (sr.p99Us > worst) {
                worst = sr.p99Us;
                report.stragglerShard = sr.device;
            }
        }
    }

    // ---- federate metrics (values must be snapshotted before `sys`
    //      and the device stats die with this scope) -------------------
    if (opts.metrics != nullptr) {
        obs::MetricsRegistry &reg = *opts.metrics;
        sim::stats::StatSet set;
        sys.registerStats(set);
        // Device 0 keeps the classic "morpheus" prefix; fleet devices
        // federate under "morpheus1", "morpheus2", ...
        for (unsigned d = 0; d < num_ssds; ++d) {
            fabric.deviceRuntime(d).registerStats(
                set,
                d == 0 ? "morpheus" : "morpheus" + std::to_string(d));
        }
        reg.absorb(set, "sys.");
        for (const TenantReport &tr : report.tenants) {
            const std::string p =
                "serving.tenant." + std::to_string(tr.id) + ".";
            reg.setCounter(p + "submitted", tr.submitted);
            reg.setCounter(p + "completed", tr.completed);
            reg.setCounter(p + "rejected", tr.rejected);
            reg.setCounter(p + "retries", tr.retries);
            reg.setCounter(p + "dsramBounces", tr.dsramBounces);
            reg.setCounter(p + "deviceFailures", tr.deviceFailures);
            reg.setCounter(p + "fallbacks", tr.fallbacks);
            reg.setCounter(p + "fallback.breaker", tr.fallbackBreaker);
            reg.setCounter(p + "fallback.overload",
                           tr.fallbackOverload);
            reg.setCounter(p + "fallback.probe", tr.fallbackProbe);
            reg.setCounter(p + "lost", tr.lost);
            reg.setCounter(p + "format",
                           static_cast<std::uint64_t>(tr.format));
            reg.setCounter(p + "writes", tr.writes);
            reg.setCounter(p + "writeBytes", tr.writeBytes);
            reg.setCounter(p + "cacheHits", tr.cacheHits);
            reg.setScalar(p + "cache_hit_rate", tr.cacheHitRate);
            reg.setCounter(p + "servedBytes", tr.servedBytes);
            reg.setScalar(p + "mean_us", tr.meanUs);
            reg.setScalar(p + "p50_us", tr.p50Us);
            reg.setScalar(p + "p95_us", tr.p95Us);
            reg.setScalar(p + "p99_us", tr.p99Us);
            reg.setScalar(p + "p999_us", tr.p999Us);
            reg.setScalar(p + "max_us", tr.maxUs);
            if (opts.slo.enabled) {
                reg.setScalar(p + "slo.target_us", tr.sloTargetUs);
                reg.setCounter(p + "slo.violations", tr.sloViolations);
                reg.setCounter(p + "slo.good_windows",
                               tr.sloGoodWindows);
                reg.setCounter(p + "slo.bad_windows", tr.sloBadWindows);
                reg.setScalar(p + "slo.burn_rate", tr.sloBurnRate);
            }
            if (tr.attributed > 0) {
                for (std::size_t s = 0; s < obs::kNumStages; ++s) {
                    const std::string stage = obs::stageName(
                        static_cast<obs::Stage>(s));
                    reg.setScalar(
                        p + "breakdown." + stage + "_mean_us",
                        tr.stageMeanUs[s]);
                    reg.setScalar(p + "breakdown." + stage + "_p99_us",
                                  tr.stageP99Us[s]);
                }
            }
        }
        reg.setCounter("serving.submitted", report.submitted);
        reg.setCounter("serving.completed", report.completed);
        reg.setCounter("serving.rejected", report.rejected);
        reg.setCounter("serving.deviceFailures", report.deviceFailures);
        reg.setCounter("serving.fallbacks", report.fallbacks);
        reg.setCounter("serving.fallback.breaker",
                       report.fallbackBreaker);
        reg.setCounter("serving.fallback.overload",
                       report.fallbackOverload);
        reg.setCounter("serving.fallback.probe", report.fallbackProbe);
        reg.setCounter("serving.lost", report.lost);
        reg.setCounter("serving.writes", report.writes);
        reg.setCounter("serving.writeBytes", report.writeBytes);
        reg.setCounter("serving.cacheHits", report.cacheHits);
        reg.setCounter("serving.driverRetries", report.driverRetries);
        reg.setCounter("serving.driverTimeouts", report.driverTimeouts);
        reg.setCounter("serving.migrations", report.migrations);
        reg.setCounter("serving.drrDelays", report.drrDelays);
        reg.setCounter("serving.makespan_ticks", report.makespan);
        reg.setScalar("serving.mean_us", report.meanUs);
        reg.setScalar("serving.p50_us", report.p50Us);
        reg.setScalar("serving.p95_us", report.p95Us);
        reg.setScalar("serving.p99_us", report.p99Us);
        reg.setScalar("serving.p999_us", report.p999Us);
        reg.setScalar("serving.max_us", report.maxUs);
        reg.setScalar("serving.jain_fairness", report.jainFairness);
        reg.setScalar("serving.throughput_per_sec",
                      report.throughputPerSec);
        if (opts.hybrid.enabled) {
            for (unsigned p = 0; p < sched::kNumPlacements; ++p) {
                reg.setCounter(
                    std::string("sched.hybrid.decisions.") +
                        sched::placementName(
                            static_cast<sched::ExecPlacement>(p)),
                    report.hybridDecisions[p]);
            }
            reg.setCounter("sched.hybrid.flips", report.hybridFlips);
            reg.setCounter("serving.split", report.splitRequests);
            reg.setCounter("serving.overloadBounces",
                           report.overloadBounces);
            reg.setCounter("serving.shed.bounces", report.shedBounces);
            reg.setCounter("serving.shed.rejected",
                           report.shedRejected);
        }
        if (report.attributed > 0) {
            reg.setCounter("serving.attributed", report.attributed);
            for (std::size_t s = 0; s < obs::kNumStages; ++s) {
                const std::string stage =
                    obs::stageName(static_cast<obs::Stage>(s));
                reg.setScalar(
                    "serving.breakdown." + stage + "_mean_us",
                    report.stageMeanUs[s]);
                reg.setScalar("serving.breakdown." + stage + "_p99_us",
                              report.stageP99Us[s]);
            }
        }
        if (num_ssds > 1) {
            for (const ShardReport &sr : report.shards) {
                const std::string p =
                    "shard." + std::to_string(sr.device) + ".";
                reg.setCounter(p + "requests", sr.requests);
                reg.setCounter(p + "completed", sr.completed);
                reg.setCounter(p + "servedBytes", sr.servedBytes);
                reg.setScalar(p + "mean_us", sr.meanUs);
                reg.setScalar(p + "p50_us", sr.p50Us);
                reg.setScalar(p + "p95_us", sr.p95Us);
                reg.setScalar(p + "p99_us", sr.p99Us);
                reg.setScalar(p + "p999_us", sr.p999Us);
            }
            reg.setCounter("serving.straggler_shard",
                           report.stragglerShard);
            reg.setCounter("fleet.devices", num_ssds);
            reg.setCounter("fleet.completed", report.completed);
            reg.setScalar("fleet.mean_us", report.meanUs);
            reg.setScalar("fleet.p50_us", report.p50Us);
            reg.setScalar("fleet.p95_us", report.p95Us);
            reg.setScalar("fleet.p99_us", report.p99Us);
            reg.setScalar("fleet.p999_us", report.p999Us);
            reg.setScalar("fleet.throughput_per_sec",
                          report.throughputPerSec);
        }
    }
    return report;
}

}  // namespace morpheus::workloads
