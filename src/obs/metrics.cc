#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

namespace morpheus::obs {

void
MetricsRegistry::setCounter(const std::string &name, std::uint64_t value)
{
    _counters[name] = value;
}

void
MetricsRegistry::setScalar(const std::string &name, double value)
{
    _scalars[name] = value;
}

void
MetricsRegistry::absorb(const sim::stats::StatSet &set,
                        const std::string &prefix)
{
    set.visit(
        [&](const std::string &name, std::uint64_t v) {
            setCounter(prefix + name, v);
        },
        [&](const std::string &name, double v) {
            setScalar(prefix + name, v);
        });
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    const auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second;
}

double
MetricsRegistry::scalar(const std::string &name) const
{
    const auto it = _scalars.find(name);
    return it == _scalars.end() ? 0.0 : it->second;
}

void
MetricsRegistry::clear()
{
    _counters.clear();
    _scalars.clear();
}

namespace {

std::string
renderScalar(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

using Entry = std::pair<std::string, std::string>;  // path, JSON value

/**
 * Emit the entries of [lo, hi) — all sharing the path prefix of length
 * @p depth — as one JSON object. Entries are sorted by path, so the
 * children of one segment are contiguous. A path that is both a leaf
 * and an interior node ("a.b" next to "a.b.c") keeps its value under
 * the reserved key "self".
 */
void
emitObject(std::ostream &os, const std::vector<Entry> &entries,
           std::size_t lo, std::size_t hi, std::size_t depth,
           unsigned indent)
{
    os << "{";
    bool first = true;
    const std::string pad(indent * 2 + 2, ' ');
    std::size_t i = lo;
    while (i < hi) {
        const std::string &path = entries[i].first;
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad;
        if (path.size() <= depth) {
            // A leaf whose full path is also an interior node ("a.b"
            // next to "a.b.c"): park its value under "self".
            os << "\"self\": " << entries[i].second;
            ++i;
            continue;
        }
        const std::size_t dot = path.find('.', depth);
        const std::size_t seg_end =
            dot == std::string::npos ? path.size() : dot;
        const std::string segment = path.substr(depth, seg_end - depth);
        // Group every contiguous entry whose next path segment matches
        // (entries are sorted, so children of one segment adjoin).
        std::size_t j = i;
        while (j < hi) {
            const std::string &p = entries[j].first;
            const std::size_t end = depth + segment.size();
            if (p.size() < end ||
                p.compare(depth, segment.size(), segment) != 0 ||
                (p.size() > end && p[end] != '.')) {
                break;
            }
            ++j;
        }
        if (j == i + 1 && path.size() == seg_end) {
            os << "\"" << segment << "\": " << entries[i].second;
        } else {
            os << "\"" << segment << "\": ";
            emitObject(os, entries, i, j, depth + segment.size() + 1,
                       indent + 1);
        }
        i = j;
    }
    os << "\n" << std::string(indent * 2, ' ') << "}";
}

}  // namespace

void
MetricsRegistry::report(std::ostream &os) const
{
    auto c = _counters.begin();
    auto s = _scalars.begin();
    while (c != _counters.end() || s != _scalars.end()) {
        if (s == _scalars.end() ||
            (c != _counters.end() && c->first <= s->first)) {
            os << c->first << " " << c->second << "\n";
            ++c;
        } else {
            os << s->first << " " << renderScalar(s->second) << "\n";
            ++s;
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::vector<Entry> entries;
    entries.reserve(size());
    auto c = _counters.begin();
    auto s = _scalars.begin();
    while (c != _counters.end() || s != _scalars.end()) {
        if (s == _scalars.end() ||
            (c != _counters.end() && c->first <= s->first)) {
            entries.emplace_back(c->first, std::to_string(c->second));
            ++c;
        } else {
            entries.emplace_back(s->first, renderScalar(s->second));
            ++s;
        }
    }
    emitObject(os, entries, 0, entries.size(), 0, 0);
    os << "\n";
}

}  // namespace morpheus::obs
