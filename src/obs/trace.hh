/**
 * @file
 * Cross-layer command tracing.
 *
 * Every NVMe command is stamped with a trace id at submission (the id
 * rides in the SQE's spare CDW2 bytes, so it survives the wire format
 * round-trip and is visible to every layer that sees the command).
 * Instrumented components record Spans — begin/end ticks on a named
 * track, attributed to a trace id / tenant / instance — into a
 * process-global TraceSink.
 *
 * Tracing is zero-cost when disabled: call sites guard on
 * `obs::traceSink()`, which compiles to a load and a branch on a null
 * pointer; no strings are built and no containers touched unless a
 * sink is attached. Benches verify this stays true (the simulated
 * timing must be bit-identical with and without a sink — tracing
 * observes virtual time, it never perturbs it).
 *
 * Two sinks ship: ChromeTraceSink serializes to the Chrome trace-event
 * JSON format (loadable in Perfetto / chrome://tracing; one track per
 * core/queue/link, sim ticks converted to microseconds), and
 * InMemoryTraceSink keeps the spans queryable for tests ("this MREAD
 * was never preempted", "that migration charged one I-SRAM reload").
 */

#ifndef MORPHEUS_OBS_TRACE_HH
#define MORPHEUS_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace morpheus::obs {

/** Command trace id (0 = unattributed). */
using TraceId = std::uint32_t;

/** Span field sentinel: no core attribution. */
constexpr std::uint32_t kNoCore = 0xFFFFFFFFu;

/** One recorded interval (or instant) on a named track. */
struct Span
{
    /** Track (Perfetto thread) the span renders on, e.g. "ssd.core[0]",
     *  "host.queue[1]", "pcie.ssd->host". */
    std::string track;
    /** Span label, e.g. "parse", "admission_wait", "isram_reload". */
    std::string name;
    /** Coarse layer tag: "nvme", "sched", "ssd", "pcie", "host". */
    const char *category = "";
    sim::Tick begin = 0;
    sim::Tick end = 0;
    /** Point event (rendered as an instant marker, not a slice). */
    bool instant = false;

    TraceId trace = 0;
    std::uint32_t tenant = 0;
    std::uint32_t instance = 0;
    std::uint32_t core = kNoCore;
    std::uint64_t bytes = 0;
    /** NVMe status word when relevant (0 = success/not applicable). */
    std::uint32_t status = 0;

    sim::Tick duration() const { return end - begin; }
};

/** Common span attribution passed through instrumented components. */
struct SpanCtx
{
    TraceId trace = 0;
    std::uint32_t tenant = 0;
    std::uint32_t instance = 0;
    std::uint64_t bytes = 0;
};

/** Receiver of recorded spans. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const Span &span) = 0;
};

namespace detail {
/** The process-global sink pointer; null = tracing disabled. */
extern TraceSink *g_sink;
}  // namespace detail

/** The attached sink, or nullptr. The hot-path guard. */
inline TraceSink *
traceSink()
{
    return detail::g_sink;
}

/** Attach (or with nullptr, detach) the process-global sink. */
void setTraceSink(TraceSink *sink);

/** RAII attach/detach, for benches and tests. */
class ScopedTraceSink
{
  public:
    explicit ScopedTraceSink(TraceSink &sink) : _previous(traceSink())
    {
        setTraceSink(&sink);
    }
    ~ScopedTraceSink() { setTraceSink(_previous); }
    ScopedTraceSink(const ScopedTraceSink &) = delete;
    ScopedTraceSink &operator=(const ScopedTraceSink &) = delete;

  private:
    TraceSink *_previous;
};

/** Buffering sink that tests can query. */
class InMemoryTraceSink : public TraceSink
{
  public:
    void record(const Span &span) override { _spans.push_back(span); }

    const std::vector<Span> &spans() const { return _spans; }
    std::size_t size() const { return _spans.size(); }
    void clear() { _spans.clear(); }

    /** All spans with the given label. */
    std::vector<Span> named(const std::string &name) const;

    /** All spans on the given track. */
    std::vector<Span> onTrack(const std::string &track) const;

    /** All spans attributed to the given trace id. */
    std::vector<Span> forTrace(TraceId id) const;

    /** Number of spans with the given label. */
    std::size_t count(const std::string &name) const;

    /**
     * True when some span on @p track, NOT attributed to @p id,
     * overlaps [begin, end) — i.e. the traced work shared its resource
     * with someone else ("was it preempted?").
     */
    bool overlapsOther(const std::string &track, sim::Tick begin,
                       sim::Tick end, TraceId id) const;

  private:
    std::vector<Span> _spans;
};

/**
 * Serialize @p spans as one Chrome trace-event JSON document: "M"
 * thread_name metadata labels one track per first-seen Span::track,
 * "X" complete events carry ts/dur in microseconds (sim ticks are
 * picoseconds, rendered as exact decimal microseconds — never rounded
 * or truncated), and instants become "i" events. An empty span list
 * produces the valid empty document {"traceEvents":[]}. Loadable in
 * Perfetto and chrome://tracing. Shared by ChromeTraceSink and the
 * FlightRecorder's slow-trace export.
 */
void writeChromeTrace(std::ostream &os, const std::vector<Span> &spans);

/**
 * Chrome trace-event JSON backend. Buffers spans; write() emits a
 * {"traceEvents": [...]} document via writeChromeTrace().
 */
class ChromeTraceSink : public TraceSink
{
  public:
    void record(const Span &span) override { _spans.push_back(span); }

    std::size_t size() const { return _spans.size(); }

    /** Serialize every buffered span as one JSON document. */
    void write(std::ostream &os) const;

  private:
    std::vector<Span> _spans;
};

}  // namespace morpheus::obs

#endif  // MORPHEUS_OBS_TRACE_HH
