/**
 * @file
 * Per-request critical-path attribution.
 *
 * Walks the spans recorded for one request and attributes every
 * end-to-end microsecond to exactly one pipeline stage (queue wait,
 * admission, dispatch, flash fetch, parse, flush DMA, cache hit,
 * retry backoff, or residual host time). The decomposition mirrors
 * Morpheus's Fig. 2 methodology — the object-creation breakdown that
 * motivates offloading — but per request, so a serving report can say
 * "this tenant's p99 is 62% parse, 21% admission wait" and a fleet run
 * can name the straggler shard behind a slow fan-out.
 *
 * Attribution is a pure function of already-recorded spans: it never
 * touches the simulator, so enabling it cannot perturb timing.
 */

#ifndef MORPHEUS_OBS_CRITICAL_PATH_HH
#define MORPHEUS_OBS_CRITICAL_PATH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hh"
#include "sim/types.hh"

namespace morpheus::obs {

/**
 * Pipeline stages a request's wall-clock time decomposes into.
 * Ordered roughly by position in the pipeline; kHost is the residual
 * (submission software, completion plumbing, inter-command gaps).
 */
enum class Stage : std::uint8_t {
    kHost = 0,   ///< Residual host-side time not covered by any span.
    kQueue,      ///< SQ residency before the controller dispatches.
    kAdmission,  ///< Scheduler admission / DRR arbitration wait.
    kDispatch,   ///< Controller frontend decode + exec bookkeeping.
    kFetch,      ///< Flash reads into controller DRAM (incl. readahead).
    kParse,      ///< Embedded-core app execution (parse/serialize/...).
    kFlush,      ///< DMA flush / data movement to the host.
    kCacheHit,   ///< Deserialized-object cache hit service.
    kRetry,      ///< Host-side backoff between bounce and re-submit.
    kHostExec,   ///< Host-path execution (fallback/overload/split).
};

/** Number of Stage values (array extent for per-stage aggregates). */
constexpr std::size_t kNumStages = 10;

/** Short stable name for a stage ("parse", "admission", ...). */
const char *stageName(Stage s);

/**
 * Per-request stage decomposition: ticks attributed to each stage.
 * attributeSpans() guarantees ticks sum exactly to the analyzed
 * window, so percentages are well defined.
 */
struct Attribution
{
    std::array<sim::Tick, kNumStages> ticks{};

    sim::Tick
    total() const
    {
        sim::Tick sum = 0;
        for (const sim::Tick t : ticks)
            sum += t;
        return sum;
    }

    sim::Tick &operator[](Stage s) { return ticks[static_cast<std::size_t>(s)]; }
    sim::Tick operator[](Stage s) const
    {
        return ticks[static_cast<std::size_t>(s)];
    }

    Attribution &
    operator+=(const Attribution &o)
    {
        for (std::size_t i = 0; i < kNumStages; ++i)
            ticks[i] += o.ticks[i];
        return *this;
    }
};

/**
 * Classify one span into the stage it evidences, with a priority for
 * breaking concurrent-coverage ties (higher wins; deeper pipeline
 * stages outrank their umbrellas, so "parse" beats the MREAD exec
 * umbrella it nests under). Returns false for spans that carry no
 * stage evidence (instants, unknown labels).
 */
bool classifySpan(const Span &span, Stage *stage, int *priority);

/**
 * Attribute every tick of [lo, hi) to exactly one stage. Interval
 * spans are clipped to the window; at each instant the highest-
 * priority covering stage owns the time, and uncovered gaps fall to
 * Stage::kHost. By construction the result's total() == hi - lo.
 */
Attribution attributeSpans(const std::vector<Span> &spans, sim::Tick lo,
                           sim::Tick hi);

/** Device that issued a trace id (fleet ids are device << 24 | seq). */
inline std::uint32_t
deviceOfTrace(TraceId id)
{
    return id >> 24;
}

/** One per-device leg of a fleet fan-out (host queue umbrella hull). */
struct FanoutLeg
{
    std::uint32_t device = 0;
    sim::Tick begin = 0;
    sim::Tick end = 0;
};

/**
 * Group host-queue umbrella spans by issuing device: the convex hull
 * [min begin, max end] per device is that shard's leg of the fan-out.
 * Legs are returned sorted by device id.
 */
std::vector<FanoutLeg> fanoutLegs(const std::vector<Span> &spans);

/**
 * The straggler: device whose leg finishes last (ties to the lower
 * id). Returns 0 on an empty leg list.
 */
std::uint32_t stragglerDevice(const std::vector<FanoutLeg> &legs);

}  // namespace morpheus::obs

#endif  // MORPHEUS_OBS_CRITICAL_PATH_HH
