/**
 * @file
 * Always-on tail-based flight recorder.
 *
 * Full tracing of every request is too expensive to leave on, but the
 * requests worth tracing — the slowest, the failed, the circuit-broken
 * — are only identifiable after the fact. The FlightRecorder squares
 * that: it is a TraceSink holding a bounded span ring buffer (recent
 * history only, old spans overwritten), plus a tail-sampling policy
 * that promotes full traces to a retained set when a request turns out
 * to be slowest-K or failed. Retained traces export as Chrome/Perfetto
 * JSON via writeChromeJson() (the --slow-traces flag).
 *
 * The recorder can tee every span to a downstream sink (e.g. a full
 * ChromeTraceSink when --trace is also given), so attaching it never
 * hides spans from other consumers.
 *
 * Like all obs sinks it only observes: record() never touches the
 * simulator, so sim results stay bit-identical with it attached.
 */

#ifndef MORPHEUS_OBS_FLIGHT_RECORDER_HH
#define MORPHEUS_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "obs/trace.hh"
#include "sim/types.hh"

namespace morpheus::obs {

struct FlightRecorderConfig
{
    /** Span ring capacity; bounds recorder memory regardless of run
     *  length. Old spans are overwritten FIFO. */
    std::size_t ringCapacity = std::size_t{1} << 15;
    /** Retain full traces for the K slowest completed requests. */
    std::size_t slowestK = 8;
    /** Retain at most this many failed/broken request traces. */
    std::size_t maxFailed = 32;
    /** Optional tee: every recorded span is forwarded here first. */
    TraceSink *downstream = nullptr;
};

/** Identity and outcome of one request offered for retention. */
struct RequestMeta
{
    std::uint64_t requestId = 0;
    std::uint32_t tenant = 0;
    sim::Tick begin = 0;
    sim::Tick end = 0;
    /** Rejected / lost / circuit-broken — retained unconditionally
     *  (up to maxFailed). */
    bool failed = false;

    sim::Tick latency() const { return end - begin; }
};

/** One retained request: its meta plus the full span set. */
struct RetainedTrace
{
    RequestMeta meta;
    std::vector<Span> spans;
};

class FlightRecorder : public TraceSink
{
  public:
    explicit FlightRecorder(const FlightRecorderConfig &cfg = {});

    /** Tee to downstream, then store in the ring (overwriting the
     *  oldest span once full). */
    void record(const Span &span) override;

    /**
     * All ring-resident spans attributed to any of @p ids, in a
     * deterministic order (sorted by begin/end/track/name). Spans
     * already overwritten by ring wrap are gone — callers collect
     * promptly at request completion.
     */
    std::vector<Span> collect(const std::vector<TraceId> &ids) const;

    /**
     * Offer a finished request for retention. Failed requests are kept
     * unconditionally up to maxFailed (first-come, deterministic);
     * completed requests compete for the slowest-K set by latency.
     * @p spans is moved into the retained set when kept.
     */
    void offer(const RequestMeta &meta, std::vector<Span> spans);

    /** Retained traces: failed first (offer order), then slowest-K
     *  sorted by descending latency (requestId breaks ties). */
    std::vector<RetainedTrace> retained() const;

    /**
     * Export every retained trace as one Chrome JSON document. Each
     * request gets a synthetic navigation span ("req <id> tenant<t>")
     * on a "recorder.requests" track above its merged spans, so the
     * slowest-K stand out when the file opens in Perfetto.
     */
    void writeChromeJson(std::ostream &os) const;

    std::size_t ringSize() const { return _ring.size(); }
    std::uint64_t spansRecorded() const { return _head; }
    std::uint64_t spansOverwritten() const
    {
        return _head > _cfg.ringCapacity ? _head - _cfg.ringCapacity : 0;
    }

  private:
    FlightRecorderConfig _cfg;
    /** Ring storage: grows to ringCapacity then wraps via _head. */
    std::vector<Span> _ring;
    /** Monotone count of spans ever recorded; slot = _head % cap. */
    std::uint64_t _head = 0;
    /** trace id -> occupied ring slots (only ids != 0 are indexed),
     *  so collect() is O(request spans), not O(ring). */
    std::unordered_map<TraceId, std::vector<std::uint32_t>> _index;

    std::vector<RetainedTrace> _failed;
    std::vector<RetainedTrace> _slowest;

    void unindexSlot(std::uint32_t slot);
};

}  // namespace morpheus::obs

#endif  // MORPHEUS_OBS_FLIGHT_RECORDER_HH
