#include "obs/timeline.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace morpheus::obs {

namespace {

/** Exact decimal microseconds for a tick stamp (ticks are ps). */
std::string
tickToUs(sim::Tick t)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1'000'000),
                  static_cast<unsigned long long>(t % 1'000'000));
    return buf;
}

/** Deterministic JSON/CSV number: integers stay integral. */
std::string
formatValue(double v)
{
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
}

}  // namespace

Timeline::Timeline(sim::Tick interval) : _interval(interval)
{
    MORPHEUS_ASSERT(interval > 0, "timeline interval must be positive");
}

void
Timeline::setColumns(std::vector<std::string> columns)
{
    MORPHEUS_ASSERT(_rows.empty(),
                    "timeline schema fixed after first record");
    _columns = std::move(columns);
}

void
Timeline::record(const std::vector<double> &values)
{
    MORPHEUS_ASSERT(_started, "timeline not started");
    MORPHEUS_ASSERT(values.size() == _columns.size(),
                    "timeline row width mismatch: ", values.size(),
                    " values for ", _columns.size(), " columns");
    _rows.push_back({_next, values});
    _next += _interval;
}

void
Timeline::writeJson(std::ostream &os) const
{
    os << "{\"intervalUs\":" << tickToUs(_interval)
       << ",\"columns\":[";
    for (std::size_t i = 0; i < _columns.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << _columns[i] << "\"";
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        if (r)
            os << ",";
        os << "\n{\"t_us\":" << tickToUs(_rows[r].at)
           << ",\"values\":[";
        for (std::size_t i = 0; i < _rows[r].values.size(); ++i) {
            if (i)
                os << ",";
            os << formatValue(_rows[r].values[i]);
        }
        os << "]}";
    }
    os << (_rows.empty() ? "]}\n" : "\n]}\n");
}

void
Timeline::writeCsv(std::ostream &os) const
{
    os << "t_us";
    for (const std::string &c : _columns)
        os << "," << c;
    os << "\n";
    for (const Row &row : _rows) {
        os << tickToUs(row.at);
        for (const double v : row.values)
            os << "," << formatValue(v);
        os << "\n";
    }
}

}  // namespace morpheus::obs
