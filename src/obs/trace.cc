#include "obs/trace.hh"

#include <cstdio>
#include <map>

namespace morpheus::obs {

namespace detail {
TraceSink *g_sink = nullptr;
}  // namespace detail

void
setTraceSink(TraceSink *sink)
{
    detail::g_sink = sink;
}

std::vector<Span>
InMemoryTraceSink::named(const std::string &name) const
{
    std::vector<Span> out;
    for (const Span &s : _spans) {
        if (s.name == name)
            out.push_back(s);
    }
    return out;
}

std::vector<Span>
InMemoryTraceSink::onTrack(const std::string &track) const
{
    std::vector<Span> out;
    for (const Span &s : _spans) {
        if (s.track == track)
            out.push_back(s);
    }
    return out;
}

std::vector<Span>
InMemoryTraceSink::forTrace(TraceId id) const
{
    std::vector<Span> out;
    for (const Span &s : _spans) {
        if (s.trace == id)
            out.push_back(s);
    }
    return out;
}

std::size_t
InMemoryTraceSink::count(const std::string &name) const
{
    std::size_t n = 0;
    for (const Span &s : _spans) {
        if (s.name == name)
            ++n;
    }
    return n;
}

bool
InMemoryTraceSink::overlapsOther(const std::string &track, sim::Tick begin,
                                 sim::Tick end, TraceId id) const
{
    for (const Span &s : _spans) {
        if (s.track != track || s.trace == id || s.instant)
            continue;
        if (s.begin < end && begin < s.end)
            return true;
    }
    return false;
}

namespace {

/** Minimal JSON string escape (our names are plain ASCII). */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/**
 * Render sim ticks (picoseconds) as exact decimal trace-event
 * microseconds. One tick is 10^-6 µs, so "<t/1e6>.<t%1e6:06>" is the
 * exact value — unlike %.6f on a double, which rounds once the whole
 * part grows past 2^53 femto-precision and used to drop sub-µs digits.
 */
std::string
ticksToTraceUs(sim::Tick t)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1'000'000),
                  static_cast<unsigned long long>(t % 1'000'000));
    return buf;
}

void
writeArgs(std::ostream &os, const Span &s)
{
    os << "\"args\":{";
    bool first = true;
    auto arg = [&](const char *key, std::uint64_t v) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << key << "\":" << v;
    };
    if (s.trace)
        arg("trace", s.trace);
    if (s.tenant)
        arg("tenant", s.tenant);
    if (s.instance)
        arg("instance", s.instance);
    if (s.core != kNoCore)
        arg("core", s.core);
    if (s.bytes)
        arg("bytes", s.bytes);
    if (s.status)
        arg("status", s.status);
    os << "}";
}

}  // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Span> &spans)
{
    // An empty trace is still a valid, loadable document.
    if (spans.empty()) {
        os << "{\"traceEvents\":[]}\n";
        return;
    }

    // Tracks become "threads" of one process; tids are assigned in
    // first-seen order so the output is deterministic in record order.
    std::map<std::string, int> tids;
    std::vector<const std::string *> track_order;
    for (const Span &s : spans) {
        if (tids.emplace(s.track, static_cast<int>(tids.size()) + 1)
                .second) {
            track_order.push_back(&s.track);
        }
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"morpheus-sim\"}}";
    for (const std::string *track : track_order) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tids[*track]
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(*track) << "\"}}";
    }

    for (const Span &s : spans) {
        sep();
        const int tid = tids[s.track];
        os << "{\"ph\":\"" << (s.instant ? "i" : "X") << "\",\"pid\":1,"
           << "\"tid\":" << tid << ",\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\""
           << (s.category && *s.category ? s.category : "sim")
           << "\",\"ts\":" << ticksToTraceUs(s.begin);
        if (s.instant) {
            os << ",\"s\":\"t\"";
        } else {
            os << ",\"dur\":" << ticksToTraceUs(s.duration());
        }
        os << ",";
        writeArgs(os, s);
        os << "}";
    }
    os << "\n]}\n";
}

void
ChromeTraceSink::write(std::ostream &os) const
{
    writeChromeTrace(os, _spans);
}

}  // namespace morpheus::obs
