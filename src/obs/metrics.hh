/**
 * @file
 * MetricsRegistry: one hierarchical, deterministically ordered view of
 * every component's counters.
 *
 * StatSets register live pointers into components, so a StatSet dies
 * with its HostSystem. The registry instead *snapshots* values (via
 * StatSet::visit) at collection time, which lets a driver hand the
 * federated metrics of a whole run — per-tenant serving quantiles next
 * to the device's admission/bounce/migration counters — back to its
 * caller after the simulated machine is gone.
 *
 * Names are dot-separated paths ("ssd.sched.arbiter.drrDelays");
 * report() dumps them flat in sorted order, writeJson() nests them
 * into one JSON object per path segment.
 */

#ifndef MORPHEUS_OBS_METRICS_HH
#define MORPHEUS_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace morpheus::obs {

/** Value-snapshotting federation of component stats. */
class MetricsRegistry
{
  public:
    /** Record (or overwrite) an integer metric. */
    void setCounter(const std::string &name, std::uint64_t value);

    /** Record (or overwrite) a floating-point metric. */
    void setScalar(const std::string &name, double value);

    /** Snapshot every stat of @p set under @p prefix. */
    void absorb(const sim::stats::StatSet &set,
                const std::string &prefix = "");

    /** Look up a snapshotted counter (0 if absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Look up a snapshotted scalar (0.0 if absent). */
    double scalar(const std::string &name) const;

    bool empty() const { return _counters.empty() && _scalars.empty(); }
    std::size_t size() const { return _counters.size() + _scalars.size(); }
    void clear();

    /** Flat deterministic dump: "name value" lines, sorted by name. */
    void report(std::ostream &os) const;

    /** One nested JSON object, path segments split on '.'. */
    void writeJson(std::ostream &os) const;

  private:
    std::map<std::string, std::uint64_t> _counters;
    std::map<std::string, double> _scalars;
};

}  // namespace morpheus::obs

#endif  // MORPHEUS_OBS_METRICS_HH
