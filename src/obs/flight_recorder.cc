#include "obs/flight_recorder.hh"

#include <algorithm>
#include <string>

#include "sim/logging.hh"

namespace morpheus::obs {

namespace {

/** Deterministic span order for collected/exported traces. */
bool
spanLess(const Span &a, const Span &b)
{
    if (a.begin != b.begin)
        return a.begin < b.begin;
    if (a.end != b.end)
        return a.end < b.end;
    if (a.track != b.track)
        return a.track < b.track;
    return a.name < b.name;
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderConfig &cfg) : _cfg(cfg)
{
    MORPHEUS_ASSERT(_cfg.ringCapacity > 0,
                    "flight recorder ring needs capacity");
    _ring.reserve(_cfg.ringCapacity);
}

void
FlightRecorder::unindexSlot(std::uint32_t slot)
{
    const TraceId old_id = _ring[slot].trace;
    if (old_id == 0)
        return;
    auto it = _index.find(old_id);
    if (it == _index.end())
        return;
    auto &slots = it->second;
    slots.erase(std::remove(slots.begin(), slots.end(), slot),
                slots.end());
    if (slots.empty())
        _index.erase(it);
}

void
FlightRecorder::record(const Span &span)
{
    if (_cfg.downstream)
        _cfg.downstream->record(span);

    const auto slot =
        static_cast<std::uint32_t>(_head % _cfg.ringCapacity);
    if (_ring.size() < _cfg.ringCapacity) {
        _ring.push_back(span);
    } else {
        unindexSlot(slot);
        _ring[slot] = span;
    }
    if (span.trace != 0)
        _index[span.trace].push_back(slot);
    ++_head;
}

std::vector<Span>
FlightRecorder::collect(const std::vector<TraceId> &ids) const
{
    std::vector<Span> out;
    for (const TraceId id : ids) {
        const auto it = _index.find(id);
        if (it == _index.end())
            continue;
        for (const std::uint32_t slot : it->second)
            out.push_back(_ring[slot]);
    }
    std::sort(out.begin(), out.end(), spanLess);
    return out;
}

void
FlightRecorder::offer(const RequestMeta &meta, std::vector<Span> spans)
{
    if (meta.failed) {
        // Failures are rare and always interesting: keep the first
        // maxFailed in arrival order, a deterministic policy.
        if (_failed.size() < _cfg.maxFailed)
            _failed.push_back({meta, std::move(spans)});
        return;
    }
    if (_cfg.slowestK == 0)
        return;
    if (_slowest.size() < _cfg.slowestK) {
        _slowest.push_back({meta, std::move(spans)});
        return;
    }
    // Evict the current fastest if this request is slower. Ties keep
    // the incumbent (earlier requestId), again deterministic.
    auto fastest = std::min_element(
        _slowest.begin(), _slowest.end(),
        [](const RetainedTrace &a, const RetainedTrace &b) {
            if (a.meta.latency() != b.meta.latency())
                return a.meta.latency() < b.meta.latency();
            return a.meta.requestId > b.meta.requestId;
        });
    if (meta.latency() > fastest->meta.latency())
        *fastest = {meta, std::move(spans)};
}

std::vector<RetainedTrace>
FlightRecorder::retained() const
{
    std::vector<RetainedTrace> out = _failed;
    std::vector<RetainedTrace> slow = _slowest;
    std::sort(slow.begin(), slow.end(),
              [](const RetainedTrace &a, const RetainedTrace &b) {
                  if (a.meta.latency() != b.meta.latency())
                      return a.meta.latency() > b.meta.latency();
                  return a.meta.requestId < b.meta.requestId;
              });
    out.insert(out.end(), slow.begin(), slow.end());
    return out;
}

void
FlightRecorder::writeChromeJson(std::ostream &os) const
{
    std::vector<Span> all;
    for (const RetainedTrace &rt : retained()) {
        // Synthetic umbrella so each retained request reads as one
        // slice on a dedicated track at the top of the Perfetto view.
        Span nav;
        nav.track = "recorder.requests";
        nav.name = "req " + std::to_string(rt.meta.requestId) +
                   " tenant" + std::to_string(rt.meta.tenant) +
                   (rt.meta.failed ? " FAILED" : "");
        nav.category = "recorder";
        nav.begin = rt.meta.begin;
        nav.end = rt.meta.end;
        nav.tenant = rt.meta.tenant;
        all.push_back(std::move(nav));
        all.insert(all.end(), rt.spans.begin(), rt.spans.end());
    }
    // Merge + resort: requests may interleave in time, and duplicate
    // spans (shared umbrellas) render harmlessly.
    std::sort(all.begin(), all.end(), spanLess);
    writeChromeTrace(os, all);
}

}  // namespace morpheus::obs
