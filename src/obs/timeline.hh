/**
 * @file
 * Time-series telemetry: periodic simulated-time snapshots.
 *
 * A Timeline samples a caller-defined row of gauges (queue depth,
 * backlog bytes, D-SRAM occupancy, cache hit rate, fault counters,
 * per-tenant throughput, ...) on a fixed simulated-time cadence. The
 * serving driver polls due()/record() from its event loop, so rows
 * land at exact interval boundaries regardless of event spacing.
 * Export as JSON ({"intervalUs", "columns", "rows"}) or CSV for
 * plotting. Pure observation: sampling reads state, never mutates it.
 */

#ifndef MORPHEUS_OBS_TIMELINE_HH
#define MORPHEUS_OBS_TIMELINE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace morpheus::obs {

class Timeline
{
  public:
    /** @param interval  Sampling cadence in sim ticks (> 0). */
    explicit Timeline(sim::Tick interval);

    /** Define the row schema; call once before the first record(). */
    void setColumns(std::vector<std::string> columns);
    const std::vector<std::string> &columns() const { return _columns; }

    /** Anchor the first sample at @p origin (usually 0). */
    void start(sim::Tick origin) { _next = origin; _started = true; }

    /** True when sim time has reached the next sample point. */
    bool due(sim::Tick now) const { return _started && now >= _next; }

    /** The tick the next row will be stamped with. */
    sim::Tick nextSampleAt() const { return _next; }

    /**
     * Record one row stamped at the pending sample tick and advance
     * the cadence. @p values must match the column count.
     */
    void record(const std::vector<double> &values);

    struct Row
    {
        sim::Tick at = 0;
        std::vector<double> values;
    };

    const std::vector<Row> &rows() const { return _rows; }
    sim::Tick interval() const { return _interval; }

    /** {"intervalUs":..,"columns":[..],"rows":[{"t_us":..,"values":[..]}]} */
    void writeJson(std::ostream &os) const;

    /** "t_us,<col>,..." header then one line per row. */
    void writeCsv(std::ostream &os) const;

  private:
    sim::Tick _interval;
    sim::Tick _next = 0;
    bool _started = false;
    std::vector<std::string> _columns;
    std::vector<Row> _rows;
};

}  // namespace morpheus::obs

#endif  // MORPHEUS_OBS_TIMELINE_HH
