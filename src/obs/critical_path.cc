#include "obs/critical_path.hh"

#include <algorithm>
#include <cstring>
#include <string>

namespace morpheus::obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::kHost:
        return "host";
      case Stage::kQueue:
        return "queue";
      case Stage::kAdmission:
        return "admission";
      case Stage::kDispatch:
        return "dispatch";
      case Stage::kFetch:
        return "fetch";
      case Stage::kParse:
        return "parse";
      case Stage::kFlush:
        return "flush";
      case Stage::kCacheHit:
        return "cache_hit";
      case Stage::kRetry:
        return "retry";
      case Stage::kHostExec:
        return "host_exec";
    }
    return "?";
}

namespace {

bool
isOpcodeUmbrella(const std::string &name)
{
    return name == "MINIT" || name == "MREAD" || name == "MWRITE" ||
           name == "MDEINIT";
}

}  // namespace

bool
classifySpan(const Span &span, Stage *stage, int *priority)
{
    // Instants mark events, not time; they never own microseconds.
    if (span.instant)
        return false;

    const std::string &n = span.name;

    // Deep pipeline work outranks the umbrellas it nests under, so a
    // "parse" slice inside an MREAD exec umbrella claims its ticks.
    // "scan" is the columnar applet's predicate/projection evaluation —
    // same core occupancy, distinct name so scan vs. emit (flush_dma)
    // attribution is visible in stage breakdowns.
    if (n == "parse" || n == "scan" || n == "serialize" ||
        n == "install" || n == "crash" || n == "isram_reload") {
        *stage = Stage::kParse;
        *priority = 90;
        return true;
    }
    if (n == "cache_hit") {
        *stage = Stage::kCacheHit;
        *priority = 85;
        return true;
    }
    if (n == "flush_dma" || n == "dma" || n == "p2p_dma" ||
        n == "dsram_move") {
        *stage = Stage::kFlush;
        *priority = 80;
        return true;
    }
    if (n == "fetch" || n == "fetch_readahead" || n == "readahead") {
        *stage = Stage::kFetch;
        *priority = 70;
        return true;
    }
    if (n == "dispatch") {
        *stage = Stage::kDispatch;
        *priority = 60;
        return true;
    }
    if (n == "admission_wait" || n == "drr_wait") {
        *stage = Stage::kAdmission;
        *priority = 50;
        return true;
    }
    if (n == "retry_wait") {
        *stage = Stage::kRetry;
        *priority = 45;
        return true;
    }
    if (n == "host_exec") {
        // The host-execution engine's read()+convert window (breaker
        // fallback, overload spill, or the host half of a split). Sits
        // below the device pipeline stages so a split request's
        // concurrent device work keeps its attribution, and the host
        // leg owns only the time nothing device-side covers.
        *stage = Stage::kHostExec;
        *priority = 40;
        return true;
    }
    if (isOpcodeUmbrella(n)) {
        // Controller-side exec umbrella: everything inside it not
        // claimed by a deeper span is dispatch/bookkeeping overhead.
        // Host-side queue umbrella: the residual is SQ residency.
        // Priorities sit below admission_wait so scheduler wait time
        // is never misattributed as dispatch.
        if (span.track.find("nvme.exec") != std::string::npos) {
            *stage = Stage::kDispatch;
            *priority = 30;
            return true;
        }
        if (span.track.find("host.queue[") != std::string::npos) {
            *stage = Stage::kQueue;
            *priority = 20;
            return true;
        }
    }
    return false;
}

Attribution
attributeSpans(const std::vector<Span> &spans, sim::Tick lo, sim::Tick hi)
{
    Attribution out;
    if (hi <= lo)
        return out;

    struct Clipped
    {
        sim::Tick begin;
        sim::Tick end;
        Stage stage;
        int priority;
    };
    std::vector<Clipped> active;
    active.reserve(spans.size());

    // Elementary-segment sweep: clip the classified spans to the
    // window, then cut the window at every distinct span boundary so
    // each segment has a constant covering set. The highest-priority
    // cover owns the segment; uncovered segments are residual host
    // time. Segments partition [lo, hi), so the stage ticks sum to
    // hi - lo by construction — no gaps, no double counting.
    std::vector<sim::Tick> cuts;
    cuts.push_back(lo);
    cuts.push_back(hi);
    for (const Span &s : spans) {
        Stage stage;
        int priority;
        if (!classifySpan(s, &stage, &priority))
            continue;
        const sim::Tick b = std::max(s.begin, lo);
        const sim::Tick e = std::min(s.end, hi);
        if (e <= b)
            continue;
        active.push_back({b, e, stage, priority});
        cuts.push_back(b);
        cuts.push_back(e);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        const sim::Tick seg_lo = cuts[i];
        const sim::Tick seg_hi = cuts[i + 1];
        Stage winner = Stage::kHost;
        int best = -1;
        for (const Clipped &c : active) {
            if (c.begin <= seg_lo && c.end >= seg_hi &&
                c.priority > best) {
                best = c.priority;
                winner = c.stage;
            }
        }
        out[winner] += seg_hi - seg_lo;
    }
    return out;
}

std::vector<FanoutLeg>
fanoutLegs(const std::vector<Span> &spans)
{
    std::vector<FanoutLeg> legs;
    for (const Span &s : spans) {
        if (s.instant || !isOpcodeUmbrella(s.name))
            continue;
        if (s.track.find("host.queue[") == std::string::npos)
            continue;
        const std::uint32_t dev = deviceOfTrace(s.trace);
        auto it = std::find_if(
            legs.begin(), legs.end(),
            [dev](const FanoutLeg &l) { return l.device == dev; });
        if (it == legs.end()) {
            legs.push_back({dev, s.begin, s.end});
        } else {
            it->begin = std::min(it->begin, s.begin);
            it->end = std::max(it->end, s.end);
        }
    }
    std::sort(legs.begin(), legs.end(),
              [](const FanoutLeg &a, const FanoutLeg &b) {
                  return a.device < b.device;
              });
    return legs;
}

std::uint32_t
stragglerDevice(const std::vector<FanoutLeg> &legs)
{
    std::uint32_t dev = 0;
    sim::Tick latest = 0;
    for (const FanoutLeg &l : legs) {
        if (l.end > latest) {
            latest = l.end;
            dev = l.device;
        }
    }
    return dev;
}

}  // namespace morpheus::obs
