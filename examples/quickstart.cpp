/**
 * @file
 * Quickstart: build the simulated platform, put a text file of
 * integers on the Morpheus-SSD, deserialize it twice — once the
 * conventional way on the host CPU, once with a StorageApp on the
 * SSD's embedded cores — and compare the results and the simulated
 * cost.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "serde/formats.hh"
#include "workloads/generators.hh"

using namespace morpheus;

int
main()
{
    // 1. The machine: quad-core Xeon, DDR3, PCIe fabric, the
    //    Morpheus-SSD and a K20-class GPU (defaults from the paper).
    host::HostSystem sys;

    // 2. An input file: one million ASCII integers.
    const serde::IntArrayObject truth =
        workloads::genIntArray(/*seed=*/7, /*n=*/1000000);
    serde::TextWriter writer;
    truth.serialize(writer);
    const host::FileExtent file =
        sys.createFile("numbers.txt", writer.bytes());
    std::printf("input: %.1f MiB of text, %.1f MiB as binary objects\n",
                file.sizeBytes / 1048576.0,
                truth.objectBytes() / 1048576.0);

    // 3a. Conventional deserialization: the host CPU parses raw bytes.
    serde::ParseCost cost;
    const auto raw = sys.fileBytes(file);
    serde::TextScanner scanner(raw.data(), raw.size());
    serde::IntArrayObject host_parsed;
    if (!host_parsed.parse(scanner)) {
        std::fprintf(stderr, "host parse failed\n");
        return 1;
    }
    cost += scanner.cost();
    const double host_cycles = sys.cpu().convertCycles(cost) +
                               sys.os().config().fsCyclesPerByte *
                                   static_cast<double>(cost.bytes);
    const double host_seconds = host_cycles / sys.cpu().freqHz();
    std::printf("conventional: %.1f ms of host CPU work at %.1f GHz\n",
                host_seconds * 1e3, sys.cpu().freqHz() / 1e9);

    // 3b. Morpheus: install the int-array StorageApp and stream the
    //     file through the SSD's embedded cores.
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p(sys);
    core::MorpheusRuntime runtime(sys, device, p2p);
    const core::StandardImages images = core::StandardImages::make();

    const core::MsStream stream =
        runtime.streamCreate(file, file.readyAt);
    const core::DmaTarget target =
        runtime.hostTarget(truth.objectBytes());
    const core::InvokeResult result = runtime.invoke(
        images.intArray, stream, target, file.readyAt);

    std::printf("morpheus:     %.1f ms on the SSD (%llu MREADs, "
                "%llu host wakeups), return value %u\n",
                sim::ticksToSeconds(result.elapsed()) * 1e3,
                static_cast<unsigned long long>(result.mreadCommands),
                static_cast<unsigned long long>(result.hostWakeups),
                result.returnValue);

    // 4. The DMA buffer holds the binary object — identical to the
    //    host parse.
    const auto binary = sys.mem().store().readVec(
        target.addr, static_cast<std::size_t>(truth.objectBytes()));
    const serde::IntArrayObject from_device =
        serde::IntArrayObject::fromBinary(binary);
    if (!(from_device == host_parsed)) {
        std::fprintf(stderr, "object mismatch!\n");
        return 1;
    }
    std::printf("objects match bit-for-bit (%zu values)\n",
                from_device.values.size());
    return 0;
}
