/**
 * @file
 * Extension scenario (paper §I: the SSD "can directly send application
 * objects to other peripherals (e.g. NICs, FPGAs and GPUs)"): a
 * storage-to-network object pipeline.
 *
 * A NIC is attached to the PCIe switch and its TX buffer is mapped as
 * a BAR window; the StorageApp's DMA target is the NIC, so the
 * deserialized binary objects travel flash -> embedded cores -> wire
 * without ever entering host DRAM.
 */

#include <cstdio>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "host/nic_model.hh"
#include "workloads/generators.hh"

using namespace morpheus;

int
main()
{
    host::HostSystem sys;
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p(sys);
    core::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = core::StandardImages::make();

    // Attach a 10 GbE NIC to the switch and map its TX buffer.
    host::Nic nic(host::NicConfig{});
    const pcie::PortId nic_port =
        sys.fabric().addPort("nic", pcie::LinkConfig{3, 8});
    const pcie::Addr nic_bar = 1ULL << 44;
    sys.fabric().mapWindow(nic_bar, nic.config().txBufferBytes,
                           nic_port, "nic-tx", &nic);

    // The object to export: an edge list on the SSD.
    const auto graph = workloads::genEdgeList(5, 20000, 400000, false);
    serde::TextWriter w;
    graph.serialize(w);
    const auto file = sys.createFile("graph.txt", w.bytes());
    std::printf("exporting a %zu-edge graph (%.2f MB text, %.2f MB as "
                "objects)\n",
                graph.numEdges(), file.sizeBytes / 1e6,
                graph.objectBytes() / 1e6);

    // Deserialize on the SSD with the NIC as the DMA target.
    const auto host_before =
        sys.fabric().link(sys.hostPort()).totalBytes();
    const auto stream = runtime.streamCreate(file, file.readyAt);
    const core::DmaTarget target{nic_bar, false};
    const auto res = runtime.invoke(images.edgeList, stream, target,
                                    file.readyAt);
    const sim::Tick wire_done = nic.transmitQueued(res.done);

    std::printf("deserialize+DMA %.2f ms; last frame on the wire at "
                "%.2f ms (%llu frames)\n",
                sim::ticksToSeconds(res.elapsed()) * 1e3,
                sim::ticksToSeconds(wire_done - res.start) * 1e3,
                static_cast<unsigned long long>(nic.framesSent()));
    std::printf("host-link payload traffic: %.3f MB (command rings "
                "only)\n",
                (sys.fabric().link(sys.hostPort()).totalBytes() -
                 host_before) /
                    1e6);

    // Validate: the NIC TX buffer holds the exact binary object.
    const auto bin = nic.txBytes(
        0, static_cast<std::size_t>(graph.objectBytes()));
    const auto back = serde::EdgeListObject::fromBinary(bin, false);
    if (!(back == graph)) {
        std::fprintf(stderr, "NIC payload mismatch!\n");
        return 1;
    }
    std::printf("validated: NIC transmitted the exact object "
                "(%llu bytes DMAed peer-to-peer)\n",
                static_cast<unsigned long long>(nic.bytesDmaIn()));
    return 0;
}
