/**
 * @file
 * Domain scenario: a Rodinia-style CUDA application (BFS) fed three
 * ways —
 *   1. conventional: CPU deserializes, then cudaMemcpy to the GPU;
 *   2. Morpheus: the SSD deserializes into host DRAM, then cudaMemcpy;
 *   3. Morpheus + NVMe-P2P: the SSD deserializes straight into GPU
 *      device memory over the PCIe switch (paper §IV-C / §VII-B).
 *
 * Prints the data-movement story for each path.
 */

#include <cstdio>

#include "workloads/runner.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

void
report(const char *label, const wk::RunMetrics &m)
{
    std::printf("%-16s deser %8.2f ms | H2D copy %7.2f ms | kernel "
                "%6.2f ms | total %8.2f ms | PCIe %6.1f MB | P2P "
                "%6.1f MB | %s\n",
                label, sim::ticksToSeconds(m.deserTime) * 1e3,
                sim::ticksToSeconds(m.gpuCopyTime) * 1e3,
                sim::ticksToSeconds(m.kernelTime) * 1e3,
                sim::ticksToSeconds(m.totalTime) * 1e3,
                m.pcieBytesTotal / 1e6, m.p2pBytes / 1e6,
                m.validated ? "validated" : "MISMATCH");
}

}  // namespace

int
main()
{
    const wk::AppSpec &app = wk::findApp("bfs");
    std::printf("BFS (%s, CUDA) through three data paths\n\n",
                app.suite.c_str());

    wk::RunOptions o;
    o.scale = 0.5;
    bool ok = true;

    o.mode = wk::ExecutionMode::kBaseline;
    const auto base = wk::runWorkload(app, o);
    report("conventional", base);
    ok &= base.validated;

    o.mode = wk::ExecutionMode::kMorpheus;
    const auto morph = wk::runWorkload(app, o);
    report("morpheus", morph);
    ok &= morph.validated;

    o.mode = wk::ExecutionMode::kMorpheusP2p;
    const auto p2p = wk::runWorkload(app, o);
    report("morpheus+p2p", p2p);
    ok &= p2p.validated;

    std::printf("\nend-to-end speedups vs conventional: morpheus "
                "%.2fx, morpheus+p2p %.2fx\n",
                static_cast<double>(base.totalTime) /
                    static_cast<double>(morph.totalTime),
                static_cast<double>(base.totalTime) /
                    static_cast<double>(p2p.totalTime));
    return ok ? 0 : 1;
}
