/**
 * @file
 * Extension scenario (paper §III: "emitting key-value pairs from
 * flash-based key-value store"): a sorted key-value table lives on the
 * Morpheus-SSD; the host wants one key range.
 *
 * Conventional path: read the whole table over PCIe, parse it on the
 * CPU, filter in host memory. Morpheus path: a KvRangeEmitApp scans
 * the table on the embedded cores and DMAs out only the matching
 * pairs — the strongest form of the paper's "deliver only the objects
 * that are useful" bandwidth argument.
 */

#include <cstdio>

#include "core/host_runtime.hh"
#include "core/kv_store.hh"
#include "host/host_system.hh"
#include "serde/scanner.hh"

using namespace morpheus;

int
main()
{
    host::HostSystem sys;
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p(sys);
    core::MorpheusRuntime runtime(sys, device, p2p);

    // A 400k-pair sorted table on flash.
    const core::KvTable table = core::genKvTable(99, 400000);
    serde::TextWriter w;
    table.serialize(w);
    const host::FileExtent file = sys.createFile("kv.tbl", w.bytes());
    std::printf("table: %zu pairs, %.2f MB of text on flash\n",
                table.size(), file.sizeBytes / 1e6);

    // Query: one bucket-aligned 16-bit key window (~10%% of the keys).
    const std::uint32_t max_key = table.keys.back();
    const std::uint32_t lo = ((max_key / 2) >> 16) << 16;
    const std::uint32_t hi = lo + ((max_key / 10) | 0xFFFF);
    const auto expected = core::KvTable::fromPairBinary(
        table.rangeBinary(lo, hi));
    std::printf("query: keys [%u, %u] -> %zu pairs (%.1f%% of table)\n",
                lo, hi, expected.size(),
                100.0 * expected.size() / table.size());

    // --- Conventional: whole table crosses PCIe, host parses+filters.
    const auto pcie_before = sys.fabric().fabricBytes();
    const pcie::Addr raw_buf = sys.allocHost(file.sizeBytes);
    const sim::Tick io_done = sys.ssdBackend().read(
        file.startByte, file.sizeBytes, raw_buf, file.readyAt);
    const auto raw =
        sys.mem().store().readVec(raw_buf, file.sizeBytes);
    serde::TextScanner scan(raw.data(), raw.size());
    core::KvTable host_table;
    if (!host_table.parse(scan)) {
        std::fprintf(stderr, "host parse failed\n");
        return 1;
    }
    serde::ParseCost cost;
    cost += scan.cost();
    const double host_cycles =
        sys.cpu().convertCycles(cost) +
        sys.os().config().fsCyclesPerByte *
            static_cast<double>(file.sizeBytes);
    const sim::Tick conv_done =
        io_done + sys.cpu().cyclesToTime(host_cycles);
    const auto conv_pcie = sys.fabric().fabricBytes() - pcie_before;
    std::printf("conventional: %.2f ms, %.2f MB over PCIe\n",
                sim::ticksToSeconds(conv_done - file.readyAt) * 1e3,
                conv_pcie / 1e6);

    // --- Morpheus: the device filters; only matches cross PCIe.
    const auto pcie_mid = sys.fabric().fabricBytes();
    const core::StorageAppImage image = core::makeKvRangeEmitImage();
    const core::MsStream stream =
        runtime.streamCreate(file, file.readyAt);
    const core::DmaTarget target = runtime.hostTarget(
        (expected.size() + 64) * core::KvTable::kPairBytes);
    core::InvokeOptions opts;
    opts.arg = core::packKvRange(lo, hi);
    const core::InvokeResult res = runtime.invoke(
        image, stream, target, file.readyAt, opts);
    const auto morph_pcie = sys.fabric().fabricBytes() - pcie_mid;
    std::printf("morpheus:     %.2f ms, %.2f MB over PCIe "
                "(%u pairs emitted on-device)\n",
                sim::ticksToSeconds(res.elapsed()) * 1e3,
                morph_pcie / 1e6, res.returnValue);

    // --- Validate: the DMA buffer holds exactly the expected pairs.
    const auto bin = sys.mem().store().readVec(
        target.addr,
        res.returnValue * core::KvTable::kPairBytes);
    const core::KvTable got = core::KvTable::fromPairBinary(bin);
    if (!(got == expected)) {
        std::fprintf(stderr, "filter result mismatch!\n");
        return 1;
    }
    std::printf("validated: device result == host filter "
                "(PCIe traffic %.1fx lower)\n",
                static_cast<double>(conv_pcie) /
                    static_cast<double>(morph_pcie));
    return 0;
}
