/**
 * @file
 * Domain scenario: a 4-rank MPI-style PageRank whose edge-list
 * deserialization is offloaded to the Morpheus-SSD — the paper's
 * motivating BigDataBench workload (Fig 7's inputapplet corresponds to
 * the EdgeListApp used here).
 *
 * Runs the same application in the conventional and the Morpheus
 * model and prints the phase breakdown of each.
 */

#include <cstdio>

#include "workloads/runner.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

void
report(const char *label, const wk::RunMetrics &m)
{
    std::printf("%-14s deser %8.2f ms | kernel %8.2f ms | other "
                "%6.2f ms | total %8.2f ms | ctx-switch %6llu | %s\n",
                label, sim::ticksToSeconds(m.deserTime) * 1e3,
                sim::ticksToSeconds(m.kernelTime) * 1e3,
                sim::ticksToSeconds(m.otherCpuTime) * 1e3,
                sim::ticksToSeconds(m.totalTime) * 1e3,
                static_cast<unsigned long long>(m.contextSwitchesDeser),
                m.validated ? "validated" : "MISMATCH");
}

}  // namespace

int
main()
{
    const wk::AppSpec &app = wk::findApp("pagerank");
    std::printf("PageRank (%s, %u MPI ranks), scaled input\n",
                app.suite.c_str(), app.ranks);

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    base.scale = 0.5;
    const auto m_base = wk::runWorkload(app, base);
    report("conventional", m_base);

    wk::RunOptions morph = base;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto m_morph = wk::runWorkload(app, morph);
    report("morpheus", m_morph);

    std::printf("\nderser speedup %.2fx, end-to-end speedup %.2fx, "
                "memory-bus traffic %.0f%% lower\n",
                static_cast<double>(m_base.deserTime) /
                    static_cast<double>(m_morph.deserTime),
                static_cast<double>(m_base.totalTime) /
                    static_cast<double>(m_morph.totalTime),
                100.0 * (1.0 - static_cast<double>(
                                   m_morph.membusBytesDeser) /
                                   static_cast<double>(
                                       m_base.membusBytesDeser)));
    return (m_base.validated && m_morph.validated) ? 0 : 1;
}
