/**
 * @file
 * Extension scenario (paper §III: "we can apply this model to ...
 * serialization"): the MWRITE path. The host hands the SSD binary
 * 64-bit integers; a serializer StorageApp converts them to ASCII on
 * the embedded cores and writes the text to flash — no host-CPU
 * formatting, no raw-text transfer over PCIe.
 */

#include <cstdio>

#include "core/device_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "serde/scanner.hh"
#include "workloads/generators.hh"

using namespace morpheus;

int
main()
{
    host::HostSystem sys;
    core::MorpheusDeviceRuntime device(sys.ssd());
    const core::StandardImages images = core::StandardImages::make();

    // Binary values in host memory (what an application would have
    // computed and now wants persisted as text).
    const serde::IntArrayObject data =
        workloads::genIntArray(11, 200000);
    std::vector<std::uint8_t> binary;
    binary.reserve(data.values.size() * 8);
    for (const auto v : data.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        binary.insert(binary.end(), p, p + 8);
    }
    const pcie::Addr src = sys.allocHost(binary.size());
    sys.mem().store().writeVec(src, binary);

    // MINIT the serializer, then push the buffer through MWRITE.
    const std::uint32_t instance = 1;
    core::InstanceSetup setup;
    setup.image = &images.int64Serializer;
    setup.target = core::DmaTarget{src, false};
    device.stageInstance(instance, setup);

    nvme::Command minit;
    minit.opcode = nvme::Opcode::kMInit;
    minit.instanceId = instance;
    minit.prp1 = sys.allocHost(images.int64Serializer.textBytes);
    minit.cdw13 = images.int64Serializer.textBytes;
    auto cqe = sys.nvmeDriver().io(sys.ioQueue(), minit, 0);
    if (!cqe.ok()) {
        std::fprintf(stderr, "MINIT failed\n");
        return 1;
    }

    const std::uint64_t dst_byte = 256ULL << 20;  // flash destination
    const std::uint64_t chunk = 64 * 1024;        // multiple of 8
    std::uint64_t off = 0;
    sim::Tick t = cqe.postedAt;
    while (off < binary.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(chunk, binary.size() - off);
        nvme::Command mwrite;
        mwrite.opcode = nvme::Opcode::kMWrite;
        mwrite.instanceId = instance;
        mwrite.prp1 = src + off;
        mwrite.slba = dst_byte / nvme::kBlockBytes;
        mwrite.nlb = static_cast<std::uint16_t>(
            (n + nvme::kBlockBytes - 1) / nvme::kBlockBytes - 1);
        mwrite.cdw13 = static_cast<std::uint32_t>(n);
        cqe = sys.nvmeDriver().io(sys.ioQueue(), mwrite, t);
        if (!cqe.ok()) {
            std::fprintf(stderr, "MWRITE failed\n");
            return 1;
        }
        t = cqe.postedAt;
        off += n;
    }

    nvme::Command fin;
    fin.opcode = nvme::Opcode::kMDeinit;
    fin.instanceId = instance;
    cqe = sys.nvmeDriver().io(sys.ioQueue(), fin, t);
    std::printf("serialized %zu values on-device in %.2f ms "
                "(return value %u)\n",
                data.values.size(), sim::ticksToSeconds(cqe.postedAt) * 1e3,
                cqe.dw0);

    // Verify: parse the text now sitting on flash.
    const auto text = sys.ssd().peekBytes(
        dst_byte, data.values.size() * 10 + 64);
    serde::TextScanner scan(text.data(), text.size());
    std::size_t matched = 0;
    std::int64_t v = 0;
    while (matched < data.values.size() && scan.nextInt64(&v)) {
        if (v != data.values[matched])
            break;
        ++matched;
    }
    if (matched != data.values.size()) {
        std::fprintf(stderr, "verification failed at value %zu\n",
                     matched);
        return 1;
    }
    std::printf("flash text verified: all %zu values round-tripped\n",
                matched);
    return 0;
}
