/**
 * @file
 * The §III generality claim, verbatim: "the storage device supporting
 * the Morpheus model can transform the same file into different kinds
 * of data structures according to the demand of applications."
 *
 * One edge-list file on flash is deserialized twice by two different
 * StorageApps:
 *   1. EdgeListApp  -> a graph object (u32 endpoints) for PageRank;
 *   2. FlatNumbersApp -> a flat f64 stream, e.g. for a statistics or
 *      sampling pass that does not care about graph structure.
 * No file rewrite, no host parsing — just a different applet.
 */

#include <cstdio>
#include <cstring>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "workloads/generators.hh"

using namespace morpheus;

int
main()
{
    host::HostSystem sys;
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p(sys);
    core::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = core::StandardImages::make();

    const auto graph = workloads::genEdgeList(9, 30000, 600000, false);
    serde::TextWriter w;
    graph.serialize(w);
    const auto file = sys.createFile("edges.txt", w.bytes());
    std::printf("one file: %.2f MB edge-list text on flash\n\n",
                file.sizeBytes / 1e6);

    // View 1: the typed graph object.
    {
        const auto stream = runtime.streamCreate(file, file.readyAt);
        const auto target = runtime.hostTarget(graph.objectBytes());
        const auto res = runtime.invoke(images.edgeList, stream, target,
                                        file.readyAt);
        const auto bin = sys.mem().store().readVec(
            target.addr, static_cast<std::size_t>(graph.objectBytes()));
        const auto back = serde::EdgeListObject::fromBinary(bin, false);
        std::printf("view 1 (edge-list applet): %zu edges as u32 "
                    "pairs, %.2f ms, %s\n",
                    back.numEdges(),
                    sim::ticksToSeconds(res.elapsed()) * 1e3,
                    back == graph ? "validated" : "MISMATCH");
        if (!(back == graph))
            return 1;
    }

    // View 2: the same bytes as a flat f64 number stream.
    {
        const std::uint64_t numbers = 2 + 2 * graph.numEdges();
        const auto stream = runtime.streamCreate(file, file.readyAt);
        const auto target = runtime.hostTarget(numbers * 8);
        const auto res = runtime.invoke(images.flatNumbers, stream,
                                        target, file.readyAt);
        std::printf("view 2 (flat-numbers applet): %u f64 values, "
                    "%.2f ms\n",
                    res.returnValue,
                    sim::ticksToSeconds(res.elapsed()) * 1e3);
        if (res.returnValue != numbers) {
            std::fprintf(stderr, "expected %llu numbers\n",
                         static_cast<unsigned long long>(numbers));
            return 1;
        }
        // Spot-check: values 0,1 are the header (V, E); value 2 is the
        // first edge's source.
        const auto bin = sys.mem().store().readVec(target.addr, 24);
        double h[3];
        std::memcpy(h, bin.data(), 24);
        std::printf("first numbers: %g %g %g (header V E + first "
                    "src)\n",
                    h[0], h[1], h[2]);
        if (h[0] != graph.numVertices ||
            h[1] != static_cast<double>(graph.numEdges()) ||
            h[2] != graph.src[0]) {
            std::fprintf(stderr, "flat view mismatch\n");
            return 1;
        }
    }

    std::printf("\nsame file, two object kinds, zero host parsing.\n");
    return 0;
}
