/**
 * @file
 * morpheus-run: command-line driver for single experiments.
 *
 * Usage:
 *   morpheus-run <app> [--mode baseline|morpheus|p2p]
 *                [--backend nvme|hdd|ram] [--freq GHZ] [--scale S]
 *                [--chunk-blocks N] [--seed N] [--stats]
 *                [--trace FILE.json] [--stats-json FILE]
 *
 * Runs one Table-I application once and prints the full metric record;
 * --stats additionally dumps every component counter of the simulated
 * machine, --trace records a Chrome trace-event JSON of the run
 * (loadable in Perfetto / chrome://tracing), and --stats-json writes
 * the federated metrics registry as nested JSON.
 * `morpheus-run list` enumerates the apps.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "shard/fleet_topology.hh"
#include "workloads/runner.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: morpheus-run <app>|list [--mode baseline|morpheus|p2p]\n"
        "                    [--backend nvme|hdd|ram] [--freq GHZ]\n"
        "                    [--scale S] [--chunk-blocks N] [--seed N]\n"
        "                    [--stats] [--trace FILE.json]\n"
        "                    [--stats-json FILE]\n"
        "                    [--fault-plan key=value,...]\n"
        "                    [--recovery]\n"
        "                    [--pipeline] [--no-readahead]\n"
        "                    [--no-double-buffer] [--no-coalesce]\n"
        "                    [--readahead-bytes N]\n"
        "                    [--max-descriptor-bytes N]\n"
        "                    [--ssds N] [--shard-policy hash|range]\n"
        "                    [--fleet-topology FILE.json]\n"
        "                    [--cache] [--cache-bytes N]\n"
        "                    [--cache-policy lru|fifo|frequency]\n"
        "fault plan keys: media, dma, crash, hang, drop (rates),\n"
        "dma_min, watchdog_us, seed; also read from MORPHEUS_FAULTS.\n"
        "--recovery enables driver timeouts + bounded retries.\n"
        "--pipeline enables the streaming chunk pipeline (flash\n"
        "readahead + double-buffered parse + coalesced flush DMA);\n"
        "the --no-* flags disable one stage, --readahead-bytes and\n"
        "--max-descriptor-bytes bound the prefetch buffer and the\n"
        "merged DMA descriptor size.\n"
        "--ssds puts N SSDs behind the switch (the app still runs on\n"
        "device 0; object placement across the fleet is exercised by\n"
        "the serving benches). --fleet-topology loads per-device\n"
        "geometry from JSON, --shard-policy picks hash or range\n"
        "placement for it.\n"
        "--cache enables the deserialized-object cache in controller\n"
        "DRAM; --cache-bytes sets its budget (shared with the\n"
        "readahead buffer, default 64 MiB), --cache-policy the\n"
        "eviction policy.\n");
}

int
listApps()
{
    std::printf("%-12s %-14s %-6s %12s\n", "app", "suite", "ranks",
                "paper input");
    for (const auto &app : wk::standardSuite()) {
        std::printf("%-12s %-14s %-6u %9.2f GB\n", app.name.c_str(),
                    app.suite.c_str(), app.ranks,
                    static_cast<double>(app.paperInputBytes) / 1e9);
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string app_name = argv[1];
    if (app_name == "list")
        return listApps();
    if (app_name == "--help" || app_name == "-h") {
        usage();
        return 0;
    }

    wk::RunOptions opts;
    opts.mode = wk::ExecutionMode::kBaseline;
    opts.scale = 0.25;
    // MORPHEUS_FAULTS seeds the plan; --fault-plan overrides it.
    opts.faults = sim::FaultPlan::fromEnv();
    bool dump_stats = false;
    shard::ShardPolicy shard_policy = shard::ShardPolicy::kHash;
    std::string trace_path;
    std::string stats_json_path;
    // (collectStats set below once flags are parsed)

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            const std::string m = next("--mode");
            if (m == "baseline") {
                opts.mode = wk::ExecutionMode::kBaseline;
            } else if (m == "morpheus") {
                opts.mode = wk::ExecutionMode::kMorpheus;
            } else if (m == "p2p") {
                opts.mode = wk::ExecutionMode::kMorpheusP2p;
            } else {
                std::fprintf(stderr, "unknown mode: %s\n", m.c_str());
                return 2;
            }
        } else if (arg == "--backend") {
            const std::string b = next("--backend");
            if (b == "nvme") {
                opts.backend = wk::BackendKind::kNvme;
            } else if (b == "hdd") {
                opts.backend = wk::BackendKind::kHdd;
            } else if (b == "ram") {
                opts.backend = wk::BackendKind::kRamDrive;
            } else {
                std::fprintf(stderr, "unknown backend: %s\n",
                             b.c_str());
                return 2;
            }
        } else if (arg == "--freq") {
            opts.cpuFreqHz = std::atof(next("--freq")) * 1e9;
        } else if (arg == "--scale") {
            opts.scale = std::atof(next("--scale"));
        } else if (arg == "--chunk-blocks") {
            opts.chunkBlocks = static_cast<std::uint32_t>(
                std::atoi(next("--chunk-blocks")));
        } else if (arg == "--seed") {
            opts.seed = static_cast<std::uint64_t>(
                std::atoll(next("--seed")));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--fault-plan") {
            opts.faults = sim::FaultPlan::parse(next("--fault-plan"));
        } else if (arg == "--recovery") {
            opts.recovery.enabled = true;
        } else if (arg == "--pipeline") {
            opts.sys.ssd.pipeline.enabled = true;
        } else if (arg == "--no-readahead") {
            opts.sys.ssd.pipeline.readahead = false;
        } else if (arg == "--no-double-buffer") {
            opts.sys.ssd.pipeline.doubleBuffer = false;
        } else if (arg == "--no-coalesce") {
            opts.sys.ssd.pipeline.coalesceFlush = false;
        } else if (arg == "--readahead-bytes") {
            opts.sys.ssd.pipeline.readaheadBufferBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--readahead-bytes")));
        } else if (arg == "--max-descriptor-bytes") {
            opts.sys.ssd.pipeline.maxDescriptorBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--max-descriptor-bytes")));
        } else if (arg == "--cache") {
            opts.sys.ssd.cache.enabled = true;
        } else if (arg == "--cache-bytes") {
            opts.sys.ssd.cache.budgetBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--cache-bytes")));
        } else if (arg == "--cache-policy") {
            const char *name = next("--cache-policy");
            if (!ssd::cachePolicyFromName(name,
                                          &opts.sys.ssd.cache.policy)) {
                std::fprintf(stderr, "unknown cache policy: %s\n",
                             name);
                return 2;
            }
        } else if (arg == "--ssds") {
            opts.sys.numSsds = static_cast<unsigned>(
                std::atoi(next("--ssds")));
        } else if (arg == "--shard-policy") {
            // Validated here; placement is applied where files are
            // actually sharded (the serving/fleet drivers).
            shard_policy =
                shard::shardPolicyFromString(next("--shard-policy"));
        } else if (arg == "--fleet-topology") {
            shard::FleetTopology topo =
                shard::FleetTopology::fromFile(next("--fleet-topology"));
            topo.policy = shard_policy;
            topo.apply(opts.sys);
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--stats-json") {
            stats_json_path = next("--stats-json");
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    opts.collectStats = dump_stats;
    obs::MetricsRegistry registry;
    if (!stats_json_path.empty())
        opts.metrics = &registry;
    const wk::AppSpec &app = wk::findApp(app_name);

    wk::RunMetrics m;
    if (!trace_path.empty()) {
        obs::ChromeTraceSink trace;
        {
            const obs::ScopedTraceSink attach(trace);
            m = wk::runWorkload(app, opts);
        }
        std::ofstream os(trace_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
            return 2;
        }
        trace.write(os);
        std::fprintf(stderr, "trace: %zu events -> %s\n", trace.size(),
                     trace_path.c_str());
    } else {
        m = wk::runWorkload(app, opts);
    }

    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 2;
        }
        registry.writeJson(os);
    }

    std::printf("app                    %s (%s)\n", app.name.c_str(),
                app.suite.c_str());
    std::printf("validated              %s\n",
                m.validated ? "yes" : "NO - RESULT MISMATCH");
    std::printf("raw text               %.3f MB\n",
                m.rawTextBytes / 1e6);
    std::printf("objects produced       %.3f MB\n",
                m.objectBytesProduced / 1e6);
    std::printf("deserialization        %.3f ms\n",
                sim::ticksToSeconds(m.deserTime) * 1e3);
    std::printf("gpu copy               %.3f ms\n",
                sim::ticksToSeconds(m.gpuCopyTime) * 1e3);
    std::printf("kernel                 %.3f ms\n",
                sim::ticksToSeconds(m.kernelTime) * 1e3);
    std::printf("other cpu              %.3f ms\n",
                sim::ticksToSeconds(m.otherCpuTime) * 1e3);
    std::printf("total                  %.3f ms\n",
                sim::ticksToSeconds(m.totalTime) * 1e3);
    std::printf("effective bandwidth    %.1f MB/s per I/O thread\n",
                m.effectiveBandwidthMBps);
    std::printf("context switches       %llu (%.0f/s)\n",
                static_cast<unsigned long long>(m.contextSwitchesDeser),
                m.contextSwitchesPerSec);
    std::printf("PCIe traffic (deser)   %.3f MB\n",
                m.pcieBytesDeser / 1e6);
    std::printf("memory bus (deser)     %.3f MB\n",
                m.membusBytesDeser / 1e6);
    std::printf("P2P bytes              %.3f MB\n", m.p2pBytes / 1e6);
    std::printf("system power (deser)   %.1f W\n", m.deserPowerWatts);
    std::printf("energy (deser)         %.4f J\n",
                m.deserEnergyJoules);
    std::printf("kernel checksum        %016llx\n",
                static_cast<unsigned long long>(m.kernelChecksum));

    if (dump_stats) {
        std::printf("\n-- component counters --\n");
        std::fputs(m.statsReport.c_str(), stdout);
    }
    return m.validated ? 0 : 1;
}
