/**
 * @file
 * morpheus-run: command-line driver for single experiments.
 *
 * Usage:
 *   morpheus-run <app> [--mode baseline|morpheus|p2p]
 *                [--backend nvme|hdd|ram] [--freq GHZ] [--scale S]
 *                [--chunk-blocks N] [--seed N] [--stats]
 *                [--trace FILE.json] [--stats-json FILE]
 *
 * Runs one Table-I application once and prints the full metric record;
 * --stats additionally dumps every component counter of the simulated
 * machine, --trace records a Chrome trace-event JSON of the run
 * (loadable in Perfetto / chrome://tracing), and --stats-json writes
 * the federated metrics registry as nested JSON.
 * `morpheus-run list` enumerates the apps.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/critical_path.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "shard/fleet_topology.hh"
#include "workloads/runner.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: morpheus-run <app>|list|serve\n"
        "                    [--mode baseline|morpheus|p2p]\n"
        "                    [--backend nvme|hdd|ram] [--freq GHZ]\n"
        "                    [--scale S] [--chunk-blocks N] [--seed N]\n"
        "                    [--stats] [--trace FILE.json]\n"
        "                    [--stats-json FILE]\n"
        "                    [--fault-plan key=value,...]\n"
        "                    [--recovery]\n"
        "                    [--pipeline] [--no-readahead]\n"
        "                    [--no-double-buffer] [--no-coalesce]\n"
        "                    [--readahead-bytes N]\n"
        "                    [--max-descriptor-bytes N]\n"
        "                    [--ssds N] [--shard-policy hash|range]\n"
        "                    [--fleet-topology FILE.json]\n"
        "                    [--cache] [--cache-bytes N]\n"
        "                    [--cache-policy lru|fifo|frequency]\n"
        "fault plan keys: media, dma, crash, hang, drop (rates),\n"
        "dma_min, watchdog_us, seed; also read from MORPHEUS_FAULTS.\n"
        "--recovery enables driver timeouts + bounded retries.\n"
        "--pipeline enables the streaming chunk pipeline (flash\n"
        "readahead + double-buffered parse + coalesced flush DMA);\n"
        "the --no-* flags disable one stage, --readahead-bytes and\n"
        "--max-descriptor-bytes bound the prefetch buffer and the\n"
        "merged DMA descriptor size.\n"
        "--ssds puts N SSDs behind the switch (the app still runs on\n"
        "device 0; object placement across the fleet is exercised by\n"
        "the serving benches). --fleet-topology loads per-device\n"
        "geometry from JSON, --shard-policy picks hash or range\n"
        "placement for it.\n"
        "--cache enables the deserialized-object cache in controller\n"
        "DRAM; --cache-bytes sets its budget (shared with the\n"
        "readahead buffer, default 64 MiB), --cache-policy the\n"
        "eviction policy.\n"
        "`morpheus-run serve --help` describes the multi-tenant\n"
        "serving driver (stage breakdown, slow-trace flight recorder,\n"
        "timeline telemetry, SLO burn tracking).\n");
}

void
serveUsage()
{
    std::fprintf(
        stderr,
        "usage: morpheus-run serve [--tenants N] [--rate R] [--skew S]\n"
        "                    [--duration-sec S] [--closed-loop]\n"
        "                    [--seed N] [--ssds N]\n"
        "                    [--shard-policy hash|range]\n"
        "                    [--breakdown] [--slow-traces FILE.json]\n"
        "                    [--slow-k N] [--timeline FILE.json]\n"
        "                    [--timeline-csv FILE.csv]\n"
        "                    [--timeline-interval-us N]\n"
        "                    [--slo TARGET_US] [--slo-objective F]\n"
        "                    [--slo-window-us N] [--stats-json FILE]\n"
        "                    [--trace FILE.json] [--hybrid]\n"
        "                    [--host-cost-scale F] [--shed]\n"
        "                    [--format int|csv|json|columnar]\n"
        "                    [--selectivity F] [--project N]\n"
        "                    [--no-pushdown] [--write-fraction F]\n"
        "Runs the multi-tenant serving driver once and prints the\n"
        "report. --rate is total arrivals/s split S:1:...:1 across the\n"
        "tenants (tenant 1 gets the S share). --breakdown attributes\n"
        "every request's latency to pipeline stages; --slow-traces\n"
        "writes the flight recorder's retained slowest-K/failed traces\n"
        "as Chrome JSON (open in Perfetto); --timeline samples gauges\n"
        "every --timeline-interval-us (default 100) into JSON/CSV;\n"
        "--slo tracks per-tenant burn rate against TARGET_US at\n"
        "--slo-objective (default 0.99) over --slo-window-us windows.\n"
        "Hybrid execution (all off by default):\n"
        "  --hybrid             place each request on the device, the\n"
        "                       host CPU, or a split of the two by live\n"
        "                       load (graceful degradation past device\n"
        "                       saturation)\n"
        "  --host-cost-scale F  multiply the host path's modeled\n"
        "                       conversion cycles by F (slower host)\n"
        "  --shed               bounce requests with retry-after when\n"
        "                       BOTH device and host are saturated\n"
        "Object format (all tenants; default int = binary int arrays):\n"
        "  --format NAME        int, csv, json, or columnar\n"
        "  --selectivity F      columnar: fraction of rows the pushdown\n"
        "                       predicate keeps (0 < F <= 1, default 1)\n"
        "  --project N          columnar: project only the first N\n"
        "                       columns (0 = all, the default)\n"
        "  --no-pushdown        columnar: ship the full table instead\n"
        "                       of pushing the scan down to the device\n"
        "  --write-fraction F   fraction of requests that serialize\n"
        "                       host objects to flash via MWRITE\n"
        "                       (default 0 = read-only)\n");
}

int
serveMain(int argc, char **argv)
{
    wk::ServingOptions opts;
    opts.durationSec = 0.02;
    opts.seed = 42;
    unsigned tenants = 3;
    double rate = 12000.0, skew = 1.0;
    obs::FlightRecorderConfig frc;
    std::string slow_path, timeline_path, timeline_csv_path;
    std::string stats_json_path, trace_path;
    sim::Tick timeline_interval = 100 * sim::kPsPerUs;
    shard::ShardPolicy shard_policy = shard::ShardPolicy::kHash;
    wk::TenantFormat format = wk::TenantFormat::kIntArray;
    double selectivity = 1.0, write_fraction = 0.0;
    unsigned project = 0;
    bool pushdown = true;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tenants") {
            tenants = static_cast<unsigned>(std::atoi(next("--tenants")));
        } else if (arg == "--rate") {
            rate = std::atof(next("--rate"));
        } else if (arg == "--skew") {
            skew = std::atof(next("--skew"));
        } else if (arg == "--duration-sec") {
            opts.durationSec = std::atof(next("--duration-sec"));
        } else if (arg == "--closed-loop") {
            opts.closedLoop = true;
        } else if (arg == "--seed") {
            opts.seed = static_cast<std::uint64_t>(
                std::atoll(next("--seed")));
        } else if (arg == "--ssds") {
            opts.sys.numSsds = static_cast<unsigned>(
                std::atoi(next("--ssds")));
        } else if (arg == "--shard-policy") {
            shard_policy =
                shard::shardPolicyFromString(next("--shard-policy"));
        } else if (arg == "--breakdown") {
            opts.breakdown = true;
        } else if (arg == "--slow-traces") {
            slow_path = next("--slow-traces");
        } else if (arg == "--slow-k") {
            frc.slowestK = static_cast<std::size_t>(
                std::atoll(next("--slow-k")));
        } else if (arg == "--timeline") {
            timeline_path = next("--timeline");
        } else if (arg == "--timeline-csv") {
            timeline_csv_path = next("--timeline-csv");
        } else if (arg == "--timeline-interval-us") {
            timeline_interval = static_cast<sim::Tick>(
                std::atoll(next("--timeline-interval-us"))) *
                sim::kPsPerUs;
        } else if (arg == "--slo") {
            opts.slo.enabled = true;
            opts.slo.targetUs = std::atof(next("--slo"));
        } else if (arg == "--slo-objective") {
            opts.slo.enabled = true;
            opts.slo.objective = std::atof(next("--slo-objective"));
        } else if (arg == "--slo-window-us") {
            opts.slo.enabled = true;
            opts.slo.windowUs = std::atof(next("--slo-window-us"));
        } else if (arg == "--stats-json") {
            stats_json_path = next("--stats-json");
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--hybrid") {
            opts.hybrid.enabled = true;
        } else if (arg == "--host-cost-scale") {
            opts.hybrid.hostCostScale =
                std::atof(next("--host-cost-scale"));
        } else if (arg == "--shed") {
            opts.hybrid.enabled = true;
            opts.hybrid.shed = true;
        } else if (arg == "--format") {
            const char *name = next("--format");
            if (!wk::tenantFormatFromName(name, &format)) {
                std::fprintf(stderr, "unknown format: %s\n", name);
                return 2;
            }
        } else if (arg == "--selectivity") {
            selectivity = std::atof(next("--selectivity"));
        } else if (arg == "--project") {
            project = static_cast<unsigned>(std::atoi(next("--project")));
        } else if (arg == "--no-pushdown") {
            pushdown = false;
        } else if (arg == "--write-fraction") {
            write_fraction = std::atof(next("--write-fraction"));
        } else if (arg == "--help" || arg == "-h") {
            serveUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            serveUsage();
            return 2;
        }
    }
    if (tenants == 0 || rate <= 0.0 || skew <= 0.0 ||
        timeline_interval == 0 || opts.hybrid.hostCostScale <= 0.0 ||
        selectivity <= 0.0 || selectivity > 1.0 ||
        write_fraction < 0.0 || write_fraction > 1.0) {
        serveUsage();
        return 2;
    }

    opts.shardPolicy = shard_policy;
    // Non-default mixes (text parsers, MWRITE traffic) hold instances
    // longer than the classic binary int-array read; bound concurrent
    // instances so overload queues host-side instead of overflowing
    // I-SRAM into hard MINIT failures. The default mix keeps the
    // unbounded legacy posture (and its exact output).
    if ((format != wk::TenantFormat::kIntArray ||
         write_fraction > 0.0) &&
        opts.sys.ssd.sched.maxInflightTotal == 0)
        opts.sys.ssd.sched.maxInflightTotal = 12;
    const double base =
        rate / (skew + static_cast<double>(tenants - 1));
    for (std::uint32_t t = 0; t < tenants; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        spec.arrivalsPerSec = (t == 0) ? skew * base : base;
        spec.format = format;
        spec.selectivity = selectivity;
        spec.projectColumns = project;
        spec.pushdown = pushdown;
        spec.writeFraction = write_fraction;
        opts.tenants.push_back(spec);
    }

    obs::MetricsRegistry registry;
    if (!stats_json_path.empty())
        opts.metrics = &registry;

    // The flight recorder is the trace sink (tee-ing to a full-trace
    // ChromeTraceSink when --trace also wants everything).
    obs::ChromeTraceSink full_trace;
    if (!trace_path.empty())
        frc.downstream = &full_trace;
    obs::FlightRecorder recorder(frc);
    obs::FlightRecorder *rec = nullptr;
    if (!slow_path.empty() || !trace_path.empty() || opts.breakdown) {
        rec = &recorder;
        opts.flightRecorder = rec;
    }
    obs::Timeline timeline(timeline_interval);
    if (!timeline_path.empty() || !timeline_csv_path.empty())
        opts.timeline = &timeline;

    const wk::ServingReport r = wk::runServing(opts);

    auto write_file = [](const std::string &path, auto &&emit) {
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            std::exit(2);
        }
        emit(os);
    };
    if (!slow_path.empty()) {
        write_file(slow_path, [&](std::ostream &os) {
            rec->writeChromeJson(os);
        });
        std::fprintf(stderr, "slow traces: %zu retained -> %s\n",
                     rec->retained().size(), slow_path.c_str());
    }
    if (!trace_path.empty()) {
        write_file(trace_path, [&](std::ostream &os) {
            full_trace.write(os);
        });
        std::fprintf(stderr, "trace: %zu events -> %s\n",
                     full_trace.size(), trace_path.c_str());
    }
    if (!timeline_path.empty()) {
        write_file(timeline_path, [&](std::ostream &os) {
            timeline.writeJson(os);
        });
        std::fprintf(stderr, "timeline: %zu rows -> %s\n",
                     timeline.rows().size(), timeline_path.c_str());
    }
    if (!timeline_csv_path.empty()) {
        write_file(timeline_csv_path, [&](std::ostream &os) {
            timeline.writeCsv(os);
        });
    }
    if (!stats_json_path.empty()) {
        write_file(stats_json_path, [&](std::ostream &os) {
            registry.writeJson(os);
        });
    }

    std::printf("submitted              %llu\n",
                static_cast<unsigned long long>(r.submitted));
    std::printf("completed              %llu\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("rejected               %llu\n",
                static_cast<unsigned long long>(r.rejected));
    std::printf("lost                   %llu\n",
                static_cast<unsigned long long>(r.lost));
    std::printf("throughput             %.0f /s\n", r.throughputPerSec);
    std::printf("latency mean/p50       %.1f / %.1f us\n", r.meanUs,
                r.p50Us);
    std::printf("latency p95/p99        %.1f / %.1f us\n", r.p95Us,
                r.p99Us);
    std::printf("latency p999/max       %.1f / %.1f us\n", r.p999Us,
                r.maxUs);
    std::printf("jain fairness          %.4f\n", r.jainFairness);
    if (opts.hybrid.enabled) {
        std::printf(
            "hybrid placements      device %llu  host %llu  "
            "split %llu  shed %llu  (flips %llu)\n",
            static_cast<unsigned long long>(r.hybridDecisions[0]),
            static_cast<unsigned long long>(r.hybridDecisions[1]),
            static_cast<unsigned long long>(r.hybridDecisions[2]),
            static_cast<unsigned long long>(r.hybridDecisions[3]),
            static_cast<unsigned long long>(r.hybridFlips));
        std::printf(
            "host-path fallbacks    breaker %llu  overload %llu  "
            "probe %llu  shed-rejected %llu\n",
            static_cast<unsigned long long>(r.fallbackBreaker),
            static_cast<unsigned long long>(r.fallbackOverload),
            static_cast<unsigned long long>(r.fallbackProbe),
            static_cast<unsigned long long>(r.shedRejected));
    }
    for (const wk::TenantReport &t : r.tenants) {
        std::printf("tenant %-2u              completed %llu  "
                    "p99 %.1f us  p999 %.1f us\n",
                    t.id, static_cast<unsigned long long>(t.completed),
                    t.p99Us, t.p999Us);
        if (opts.slo.enabled) {
            std::printf("  slo %.0f us           violations %llu  "
                        "windows %llu good / %llu bad  burn %.2fx\n",
                        t.sloTargetUs,
                        static_cast<unsigned long long>(t.sloViolations),
                        static_cast<unsigned long long>(t.sloGoodWindows),
                        static_cast<unsigned long long>(t.sloBadWindows),
                        t.sloBurnRate);
        }
    }
    for (const wk::ShardReport &s : r.shards) {
        std::printf("shard %-3u              requests %llu  "
                    "p99 %.1f us%s\n",
                    s.device,
                    static_cast<unsigned long long>(s.requests), s.p99Us,
                    s.device == r.stragglerShard ? "  <- straggler"
                                                 : "");
    }
    if (opts.breakdown && r.attributed > 0) {
        std::printf("\n-- p99 critical path (all tenants) --\n");
        double total = 0.0;
        for (const double v : r.stageP99Us)
            total += v;
        for (std::size_t s = 0; s < obs::kNumStages; ++s) {
            if (r.stageP99Us[s] <= 0.0)
                continue;
            std::printf("%-12s %10.1f us  %5.1f%%\n",
                        obs::stageName(static_cast<obs::Stage>(s)),
                        r.stageP99Us[s],
                        total > 0.0 ? 100.0 * r.stageP99Us[s] / total
                                    : 0.0);
        }
        std::printf("%-12s %10.1f us  (p99 %.1f us)\n", "sum", total,
                    r.p99Us);
    }
    return 0;
}

int
listApps()
{
    std::printf("%-12s %-14s %-6s %12s\n", "app", "suite", "ranks",
                "paper input");
    for (const auto &app : wk::standardSuite()) {
        std::printf("%-12s %-14s %-6u %9.2f GB\n", app.name.c_str(),
                    app.suite.c_str(), app.ranks,
                    static_cast<double>(app.paperInputBytes) / 1e9);
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string app_name = argv[1];
    if (app_name == "list")
        return listApps();
    if (app_name == "serve")
        return serveMain(argc, argv);
    if (app_name == "--help" || app_name == "-h") {
        usage();
        return 0;
    }

    wk::RunOptions opts;
    opts.mode = wk::ExecutionMode::kBaseline;
    opts.scale = 0.25;
    // MORPHEUS_FAULTS seeds the plan; --fault-plan overrides it.
    opts.faults = sim::FaultPlan::fromEnv();
    bool dump_stats = false;
    shard::ShardPolicy shard_policy = shard::ShardPolicy::kHash;
    std::string trace_path;
    std::string stats_json_path;
    // (collectStats set below once flags are parsed)

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            const std::string m = next("--mode");
            if (m == "baseline") {
                opts.mode = wk::ExecutionMode::kBaseline;
            } else if (m == "morpheus") {
                opts.mode = wk::ExecutionMode::kMorpheus;
            } else if (m == "p2p") {
                opts.mode = wk::ExecutionMode::kMorpheusP2p;
            } else {
                std::fprintf(stderr, "unknown mode: %s\n", m.c_str());
                return 2;
            }
        } else if (arg == "--backend") {
            const std::string b = next("--backend");
            if (b == "nvme") {
                opts.backend = wk::BackendKind::kNvme;
            } else if (b == "hdd") {
                opts.backend = wk::BackendKind::kHdd;
            } else if (b == "ram") {
                opts.backend = wk::BackendKind::kRamDrive;
            } else {
                std::fprintf(stderr, "unknown backend: %s\n",
                             b.c_str());
                return 2;
            }
        } else if (arg == "--freq") {
            opts.cpuFreqHz = std::atof(next("--freq")) * 1e9;
        } else if (arg == "--scale") {
            opts.scale = std::atof(next("--scale"));
        } else if (arg == "--chunk-blocks") {
            opts.chunkBlocks = static_cast<std::uint32_t>(
                std::atoi(next("--chunk-blocks")));
        } else if (arg == "--seed") {
            opts.seed = static_cast<std::uint64_t>(
                std::atoll(next("--seed")));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--fault-plan") {
            opts.faults = sim::FaultPlan::parse(next("--fault-plan"));
        } else if (arg == "--recovery") {
            opts.recovery.enabled = true;
        } else if (arg == "--pipeline") {
            opts.sys.ssd.pipeline.enabled = true;
        } else if (arg == "--no-readahead") {
            opts.sys.ssd.pipeline.readahead = false;
        } else if (arg == "--no-double-buffer") {
            opts.sys.ssd.pipeline.doubleBuffer = false;
        } else if (arg == "--no-coalesce") {
            opts.sys.ssd.pipeline.coalesceFlush = false;
        } else if (arg == "--readahead-bytes") {
            opts.sys.ssd.pipeline.readaheadBufferBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--readahead-bytes")));
        } else if (arg == "--max-descriptor-bytes") {
            opts.sys.ssd.pipeline.maxDescriptorBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--max-descriptor-bytes")));
        } else if (arg == "--cache") {
            opts.sys.ssd.cache.enabled = true;
        } else if (arg == "--cache-bytes") {
            opts.sys.ssd.cache.budgetBytes =
                static_cast<std::uint64_t>(
                    std::atoll(next("--cache-bytes")));
        } else if (arg == "--cache-policy") {
            const char *name = next("--cache-policy");
            if (!ssd::cachePolicyFromName(name,
                                          &opts.sys.ssd.cache.policy)) {
                std::fprintf(stderr, "unknown cache policy: %s\n",
                             name);
                return 2;
            }
        } else if (arg == "--ssds") {
            opts.sys.numSsds = static_cast<unsigned>(
                std::atoi(next("--ssds")));
        } else if (arg == "--shard-policy") {
            // Validated here; placement is applied where files are
            // actually sharded (the serving/fleet drivers).
            shard_policy =
                shard::shardPolicyFromString(next("--shard-policy"));
        } else if (arg == "--fleet-topology") {
            shard::FleetTopology topo =
                shard::FleetTopology::fromFile(next("--fleet-topology"));
            topo.policy = shard_policy;
            topo.apply(opts.sys);
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--stats-json") {
            stats_json_path = next("--stats-json");
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    opts.collectStats = dump_stats;
    obs::MetricsRegistry registry;
    if (!stats_json_path.empty())
        opts.metrics = &registry;
    const wk::AppSpec &app = wk::findApp(app_name);

    wk::RunMetrics m;
    if (!trace_path.empty()) {
        obs::ChromeTraceSink trace;
        {
            const obs::ScopedTraceSink attach(trace);
            m = wk::runWorkload(app, opts);
        }
        std::ofstream os(trace_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
            return 2;
        }
        trace.write(os);
        std::fprintf(stderr, "trace: %zu events -> %s\n", trace.size(),
                     trace_path.c_str());
    } else {
        m = wk::runWorkload(app, opts);
    }

    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 2;
        }
        registry.writeJson(os);
    }

    std::printf("app                    %s (%s)\n", app.name.c_str(),
                app.suite.c_str());
    std::printf("validated              %s\n",
                m.validated ? "yes" : "NO - RESULT MISMATCH");
    std::printf("raw text               %.3f MB\n",
                m.rawTextBytes / 1e6);
    std::printf("objects produced       %.3f MB\n",
                m.objectBytesProduced / 1e6);
    std::printf("deserialization        %.3f ms\n",
                sim::ticksToSeconds(m.deserTime) * 1e3);
    std::printf("gpu copy               %.3f ms\n",
                sim::ticksToSeconds(m.gpuCopyTime) * 1e3);
    std::printf("kernel                 %.3f ms\n",
                sim::ticksToSeconds(m.kernelTime) * 1e3);
    std::printf("other cpu              %.3f ms\n",
                sim::ticksToSeconds(m.otherCpuTime) * 1e3);
    std::printf("total                  %.3f ms\n",
                sim::ticksToSeconds(m.totalTime) * 1e3);
    std::printf("effective bandwidth    %.1f MB/s per I/O thread\n",
                m.effectiveBandwidthMBps);
    std::printf("context switches       %llu (%.0f/s)\n",
                static_cast<unsigned long long>(m.contextSwitchesDeser),
                m.contextSwitchesPerSec);
    std::printf("PCIe traffic (deser)   %.3f MB\n",
                m.pcieBytesDeser / 1e6);
    std::printf("memory bus (deser)     %.3f MB\n",
                m.membusBytesDeser / 1e6);
    std::printf("P2P bytes              %.3f MB\n", m.p2pBytes / 1e6);
    std::printf("system power (deser)   %.1f W\n", m.deserPowerWatts);
    std::printf("energy (deser)         %.4f J\n",
                m.deserEnergyJoules);
    std::printf("kernel checksum        %016llx\n",
                static_cast<unsigned long long>(m.kernelChecksum));

    if (dump_stats) {
        std::printf("\n-- component counters --\n");
        std::fputs(m.statsReport.c_str(), stdout);
    }
    return m.validated ? 0 : 1;
}
