#!/usr/bin/env python3
"""Schema validator for the observability artifacts.

Validates the JSON documents the serving driver exports so CI catches
format drift before a human tries to load one in Perfetto or a
plotting notebook:

  --chrome FILE.json    slow-trace / full-trace Chrome trace-event JSON
  --timeline FILE.json  obs::Timeline JSON
  --csv FILE.csv        obs::Timeline CSV (checked against --timeline)

Exit 0 when every named artifact validates; the first violation is
reported with its path and the offending record.
"""

import argparse
import csv
import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_chrome(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, '"traceEvents" is not a list')
    durations = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(path, f"{where} has unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int):
            fail(path, f"{where} pid is not an integer")
        if not isinstance(ev.get("tid"), int):
            fail(path, f"{where} tid is not an integer")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, f"{where} has no name")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"{where} ts {ts!r} is not a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, f"{where} dur {dur!r} is invalid")
            durations += 1
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(path, f"{where} instant has invalid scope")
    print(f"ok {path}: {len(events)} events ({durations} spans)")
    return doc


def validate_timeline(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc.get("intervalUs"), (int, float)) or \
            doc["intervalUs"] <= 0:
        fail(path, '"intervalUs" is not a positive number')
    columns = doc.get("columns")
    if not isinstance(columns, list) or \
            not all(isinstance(c, str) and c for c in columns):
        fail(path, '"columns" is not a list of non-empty strings')
    rows = doc.get("rows")
    if not isinstance(rows, list):
        fail(path, '"rows" is not a list')
    prev_t = -1.0
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        t = row.get("t_us")
        if not isinstance(t, (int, float)) or t < 0:
            fail(path, f"{where} t_us {t!r} is invalid")
        if t <= prev_t:
            fail(path, f"{where} t_us {t} is not strictly increasing")
        prev_t = t
        values = row.get("values")
        if not isinstance(values, list) or len(values) != len(columns):
            fail(path, f"{where} has {len(values or [])} values for "
                       f"{len(columns)} columns")
        for v in values:
            if not isinstance(v, (int, float)):
                fail(path, f"{where} holds non-numeric value {v!r}")
    print(f"ok {path}: {len(rows)} rows x {len(columns)} columns")
    return doc


def validate_timeline_csv(path, timeline_doc):
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            fail(path, "empty file")
        body = list(reader)
    if header[0] != "t_us":
        fail(path, f"first column is {header[0]!r}, expected 't_us'")
    for line in body:
        if len(line) != len(header):
            fail(path, f"row width {len(line)} != header {len(header)}")
        for cell in line:
            float(cell)  # raises (and fails the run) on non-numbers
    if timeline_doc is not None:
        if header[1:] != timeline_doc["columns"]:
            fail(path, "CSV columns disagree with the timeline JSON")
        if len(body) != len(timeline_doc["rows"]):
            fail(path, f"{len(body)} CSV rows vs "
                       f"{len(timeline_doc['rows'])} JSON rows")
    print(f"ok {path}: {len(body)} rows")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--chrome", action="append", default=[],
                    help="Chrome trace-event JSON to validate")
    ap.add_argument("--timeline", help="timeline JSON to validate")
    ap.add_argument("--csv", help="timeline CSV to validate")
    args = ap.parse_args()
    if not args.chrome and not args.timeline and not args.csv:
        ap.error("nothing to validate")
    for path in args.chrome:
        validate_chrome(path)
    timeline_doc = None
    if args.timeline:
        timeline_doc = validate_timeline(args.timeline)
    if args.csv:
        validate_timeline_csv(args.csv, timeline_doc)


if __name__ == "__main__":
    main()
