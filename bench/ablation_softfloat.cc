/**
 * @file
 * Ablation: the FPU gap. SpMV's input is ~33% floating-point tokens;
 * on the FPU-less cores software emulation eats the offload gain
 * (paper: only ~1.1x on SpMV). Sweeping the soft-float penalty — and
 * giving the cores a hardware FPU — shows the crossover the paper
 * predicts for next-generation SSD processors.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: soft-float penalty on the embedded cores",
                  "SpMV ~1.1x without an FPU; future FPU-equipped "
                  "cores recover the gain (design choice #3)");

    const wk::AppSpec &app = wk::findApp("spmv");
    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    base.scale = bench::benchScale();
    const auto base_m = wk::runWorkload(app, base);

    std::printf("%-24s %14s %10s\n", "config", "deser(ms)", "speedup");
    for (const double penalty : {44.0, 22.0, 11.0, 5.0}) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        o.sys.ssd.core.hasFpu = false;
        o.sys.ssd.core.cyclesPerFloatOpSoft = penalty;
        const auto m = wk::runWorkload(app, o);
        std::printf("soft-float %4.0f cyc/op  %14.2f %9.2fx\n",
                    penalty, sim::ticksToSeconds(m.deserTime) * 1e3,
                    static_cast<double>(base_m.deserTime) /
                        static_cast<double>(m.deserTime));
    }
    {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        o.sys.ssd.core.hasFpu = true;
        const auto m = wk::runWorkload(app, o);
        std::printf("%-24s %14.2f %9.2fx\n", "hardware FPU",
                    sim::ticksToSeconds(m.deserTime) * 1e3,
                    static_cast<double>(base_m.deserTime) /
                        static_cast<double>(m.deserTime));
    }
    return 0;
}
