/**
 * @file
 * Deserialized-object cache gate (DESIGN.md §13).
 *
 * Runs the identical closed-loop request quota against one
 * Morpheus-SSD twice — object cache off, then on — with a Zipf-skewed
 * object popularity so a hot set exists for the cache to capture.
 * Cache hits are answered from controller DRAM (no flash fetch, no
 * re-parse, no embedded-core slot), so the cached run must cut the
 * p99 latency at the same offered load. Emits one JSON document on
 * stdout; progress goes to stderr.
 *
 * Exit status is the self-check: both runs complete every request,
 * the uncached run never reports a hit, every tenant sees hits with
 * the cache on, and cache-on p99 improves on cache-off by >= 20%.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "ssd/object_cache.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** The cache gate: cache-on p99 must improve on cache-off by this. */
constexpr double kMinP99Improvement = 0.20;

/** Hot-set capture: overall hit rate the cached run must reach. */
constexpr double kMinHitRate = 0.5;

wk::ServingOptions
makeOptions(bool cache_on)
{
    wk::ServingOptions opts;
    opts.seed = 42;
    opts.closedLoop = true;
    // Identical offered load in both runs: the same per-tenant request
    // quota and in-flight budget, so the latency delta is the cache's
    // doing, not a load difference. MORPHEUS_BENCH_SCALE scales the
    // quota (0.25 = 1x). The floor is higher than the fleet bench's:
    // the cached run needs enough requests past the cold-start misses
    // (one per distinct object) that the p99 reflects steady state.
    const double scale = morpheus::bench::benchScale() / 0.25;
    opts.closedLoopRequests = static_cast<std::uint64_t>(
        std::max(256.0, 512.0 * scale));
    opts.closedLoopConcurrency = 16;
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        opts.tenants.push_back(spec);
    }
    // Several distinct objects per size class with Zipf-skewed
    // popularity: a hot set exists, and the whole object mix fits the
    // default 64 MiB DRAM budget, so the steady-state hit rate tracks
    // the skew rather than eviction churn.
    opts.objectsPerClass = 8;
    opts.zipfSkew = 1.1;
    // Same contended scheduler posture as the fleet bench: bounded
    // in-flight instances and partitioned D-SRAM grants — exactly the
    // queueing a hit bypasses.
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;
    opts.sys.ssd.cache.enabled = cache_on;
    return opts;
}

void
printRunJson(const char *name, const wk::ServingReport &r, bool last)
{
    std::printf("    \"%s\": {\n", name);
    std::printf("      \"completed\": %llu,\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("      \"cache_hits\": %llu,\n",
                static_cast<unsigned long long>(r.cacheHits));
    std::printf("      \"throughput_per_sec\": %.0f,\n",
                r.throughputPerSec);
    std::printf("      \"mean_us\": %.2f,\n", r.meanUs);
    std::printf("      \"p50_us\": %.2f,\n", r.p50Us);
    std::printf("      \"p95_us\": %.2f,\n", r.p95Us);
    std::printf("      \"p99_us\": %.2f,\n", r.p99Us);
    std::printf("      \"jain_fairness\": %.4f,\n", r.jainFairness);
    std::printf("      \"tenants\": [\n");
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
        const wk::TenantReport &t = r.tenants[i];
        std::printf("        {\"id\": %u, \"completed\": %llu, "
                    "\"cache_hits\": %llu, \"hit_rate\": %.4f, "
                    "\"p99_us\": %.2f}%s\n",
                    t.id,
                    static_cast<unsigned long long>(t.completed),
                    static_cast<unsigned long long>(t.cacheHits),
                    t.cacheHitRate, t.p99Us,
                    i + 1 == r.tenants.size() ? "" : ",");
    }
    std::printf("      ]\n");
    std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int
main()
{
    morpheus::bench::banner(
        "object-cache serving gate (beyond-paper extension)",
        "hot deserialized objects answered from controller DRAM cut "
        "the p99 of a Zipf-skewed closed-loop serving mix");

    std::fprintf(stderr, "running cache_off...\n");
    const wk::ServingReport off = wk::runServing(makeOptions(false));
    std::fprintf(stderr, "running cache_on...\n");
    const wk::ServingReport on = wk::runServing(makeOptions(true));

    const double hit_rate =
        on.completed
            ? static_cast<double>(on.cacheHits) /
                  static_cast<double>(on.completed)
            : 0.0;
    const double p99_speedup = on.p99Us > 0.0 ? off.p99Us / on.p99Us
                                              : 0.0;
    const double p99_improvement =
        off.p99Us > 0.0 ? 1.0 - on.p99Us / off.p99Us : 0.0;
    const double mean_speedup = on.meanUs > 0.0 ? off.meanUs / on.meanUs
                                                : 0.0;
    const double tput_speedup =
        off.throughputPerSec > 0.0
            ? on.throughputPerSec / off.throughputPerSec
            : 0.0;

    std::printf("{\n  \"runs\": {\n");
    printRunJson("cache_off", off, false);
    printRunJson("cache_on", on, true);
    std::printf("  },\n");
    std::printf("  \"hit_rate\": %.4f,\n", hit_rate);
    std::printf("  \"p99_speedup\": %.3f,\n", p99_speedup);
    std::printf("  \"p99_improvement\": %.3f,\n", p99_improvement);
    std::printf("  \"mean_speedup\": %.3f,\n", mean_speedup);
    std::printf("  \"throughput_speedup\": %.3f\n", tput_speedup);
    std::printf("}\n");

    morpheus::bench::BenchConfig cfg;
    cfg.ssds = 1;
    cfg.cacheEnabled = true;
    cfg.cacheBytes = ssd::ObjectCacheConfig{}.budgetBytes;
    cfg.cachePolicy =
        ssd::cachePolicyName(ssd::ObjectCacheConfig{}.policy);
    morpheus::bench::writeBenchJson(
        "serving_cache", "cacheP99Speedup", p99_speedup, "x",
        /*higher_is_better=*/true,
        {{"p99Improvement", p99_improvement, "fraction"},
         {"hitRate", hit_rate, "fraction"},
         {"offP99Us", off.p99Us, "us"},
         {"onP99Us", on.p99Us, "us"},
         {"meanSpeedup", mean_speedup, "x"},
         {"throughputSpeedup", tput_speedup, "x"}},
        cfg);

    // ---- self-checks -------------------------------------------------
    int failures = 0;
    const auto gate = [&failures](bool ok, const char *what) {
        std::fprintf(stderr, "gate %-34s %s\n", what,
                     ok ? "pass" : "FAIL");
        if (!ok)
            ++failures;
    };
    gate(off.completed == off.submitted &&
             on.completed == on.submitted &&
             on.submitted == off.submitted,
         "identical quota, every request done");
    gate(off.cacheHits == 0, "cache off never hits");
    bool all_tenants_hit = !on.tenants.empty();
    for (const wk::TenantReport &t : on.tenants)
        all_tenants_hit = all_tenants_hit && t.cacheHits > 0;
    gate(all_tenants_hit, "every tenant sees cache hits");
    gate(hit_rate >= kMinHitRate, "hit rate >= 0.5");
    gate(p99_improvement >= kMinP99Improvement,
         "cache-on p99 improves >= 20%");
    if (failures) {
        std::fprintf(stderr, "%d gate(s) FAILED\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all cache gates passed\n");
    return 0;
}
