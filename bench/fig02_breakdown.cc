/**
 * @file
 * Figure 2: normalized execution-time breakdown of the conventional
 * baseline — other CPU computation, deserialization, GPU/CPU data
 * copy, GPU kernels.
 *
 * Paper shape: deserialization averages 64% of total execution time.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Figure 2: baseline execution-time breakdown",
                  "deserialization is ~64% of execution on average");

    // MORPHEUS_TRACE=<file.json> records the whole sweep as a Chrome
    // trace (the per-command spans are the simulated counterpart of the
    // paper's Fig. 2 time-attribution methodology).
    bench::EnvTrace trace;

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto rows = bench::runSuite(base);

    std::printf("%-12s %8s %8s %8s %8s (fractions of total)\n", "app",
                "deser", "kernel", "copy", "other");
    std::vector<double> deser_fracs;
    for (const auto &row : rows) {
        const double total = static_cast<double>(row.metrics.totalTime);
        const double deser =
            static_cast<double>(row.metrics.deserTime) / total;
        const double kernel =
            static_cast<double>(row.metrics.kernelTime) / total;
        const double copy =
            static_cast<double>(row.metrics.gpuCopyTime) / total;
        const double other =
            static_cast<double>(row.metrics.otherCpuTime) / total;
        deser_fracs.push_back(deser);
        std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    row.app->name.c_str(), deser * 100, kernel * 100,
                    copy * 100, other * 100);
    }
    std::printf("%-12s %7.1f%%  <- mean deserialization share\n",
                "mean", bench::mean(deser_fracs) * 100);
    return 0;
}
