/**
 * @file
 * Beyond-paper extension: fleet-scale serving across a multi-SSD
 * shard fabric.
 *
 * Runs the identical closed-loop request quota against 1, 2, and 4
 * Morpheus-SSDs behind one PCIe switch, objects hash-placed across
 * the fleet, and reports the throughput scaling curve plus the p99
 * cost of a Zipf-skewed object popularity (hot shards) at 4 SSDs.
 * Emits one JSON document on stdout; progress goes to stderr.
 * --stats-json FILE dumps the 4-SSD run's federated metrics registry
 * (per-device shard.<d>.* tails and fleet.* aggregates) as JSON.
 *
 * Exit status is the self-check: the 4-SSD uniform mix must complete
 * every request and reach >= 3x the single-SSD throughput at the same
 * offered load.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/metrics.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** The scaling gate: 4 SSDs must beat 1 SSD by at least this. */
constexpr double kMinFleetSpeedup = 3.0;

wk::ServingOptions
makeOptions(unsigned ssds, double zipf_skew)
{
    wk::ServingOptions opts;
    opts.seed = 42;
    opts.closedLoop = true;
    // Identical offered load at every fleet size: the same per-tenant
    // request quota and in-flight budget, so throughput measures
    // capacity. The quota must dwarf the in-flight budget or the
    // makespan is all ramp/drain transient and the fleet never reaches
    // steady state. MORPHEUS_BENCH_SCALE scales the quota (0.25 = 1x).
    const double scale = morpheus::bench::benchScale() / 0.25;
    opts.closedLoopRequests = static_cast<std::uint64_t>(
        std::max(128.0, 512.0 * scale));
    opts.closedLoopConcurrency = 16;
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        opts.tenants.push_back(spec);
    }
    opts.sys.numSsds = ssds;
    // Enough distinct objects per size class that hashed placement
    // exercises every shard; the Zipf skew then concentrates requests
    // on whichever shards own the hot objects.
    opts.objectsPerClass = 8;
    opts.zipfSkew = zipf_skew;
    opts.shardPolicy = shard::ShardPolicy::kHash;
    // Same per-device scheduler posture as the tail-latency bench:
    // bounded in-flight instances and partitioned D-SRAM grants.
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;
    return opts;
}

void
printShardJson(const wk::ShardReport &s, bool last)
{
    std::printf("        {\"device\": %u, \"requests\": %llu, "
                "\"completed\": %llu, \"served_bytes\": %llu, "
                "\"p50_us\": %.2f, \"p95_us\": %.2f, "
                "\"p99_us\": %.2f}%s\n",
                s.device,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.servedBytes),
                s.p50Us, s.p95Us, s.p99Us, last ? "" : ",");
}

void
printRunJson(const char *name, const wk::ServingReport &r, bool last)
{
    std::printf("    \"%s\": {\n", name);
    std::printf("      \"completed\": %llu,\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("      \"throughput_per_sec\": %.0f,\n",
                r.throughputPerSec);
    std::printf("      \"mean_us\": %.2f,\n", r.meanUs);
    std::printf("      \"p50_us\": %.2f,\n", r.p50Us);
    std::printf("      \"p95_us\": %.2f,\n", r.p95Us);
    std::printf("      \"p99_us\": %.2f,\n", r.p99Us);
    std::printf("      \"jain_fairness\": %.4f,\n", r.jainFairness);
    if (r.shards.empty()) {
        std::printf("      \"shards\": []\n");
    } else {
        std::printf("      \"shards\": [\n");
        for (std::size_t i = 0; i < r.shards.size(); ++i)
            printShardJson(r.shards[i], i + 1 == r.shards.size());
        std::printf("      ]\n");
    }
    std::printf("    }%s\n", last ? "" : ",");
}

/** Max/min device-path request count across shards (1 = balanced). */
double
shardImbalance(const wk::ServingReport &r)
{
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const wk::ShardReport &s : r.shards) {
        lo = std::min(lo, s.requests);
        hi = std::max(hi, s.requests);
    }
    return lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo)
                  : 0.0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string stats_json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-json") == 0 &&
            i + 1 < argc) {
            stats_json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: serving_fleet [--stats-json FILE]\n");
            return 2;
        }
    }

    morpheus::bench::banner(
        "fleet serving scaling (beyond-paper extension)",
        "one Morpheus-SSD saturates; a shard fabric of 4 behind the "
        "same switch scales request throughput near-linearly");

    struct RunSpec
    {
        const char *name;
        unsigned ssds;
        double skew;
    };
    const std::vector<RunSpec> runs = {
        {"ssd1_uniform", 1, 0.0},
        {"ssd2_uniform", 2, 0.0},
        {"ssd4_uniform", 4, 0.0},
        {"ssd4_zipf", 4, 1.1},
    };

    std::vector<wk::ServingReport> reports;
    obs::MetricsRegistry fleet_registry;  // the 4-SSD uniform run
    for (const RunSpec &run : runs) {
        std::fprintf(stderr, "running %s...\n", run.name);
        wk::ServingOptions opts = makeOptions(run.ssds, run.skew);
        if (std::strcmp(run.name, "ssd4_uniform") == 0)
            opts.metrics = &fleet_registry;
        reports.push_back(wk::runServing(opts));
    }

    const wk::ServingReport &r1 = reports[0];
    const wk::ServingReport &r2 = reports[1];
    const wk::ServingReport &r4 = reports[2];
    const wk::ServingReport &rz = reports[3];
    const double speedup2 = r2.throughputPerSec / r1.throughputPerSec;
    const double speedup4 = r4.throughputPerSec / r1.throughputPerSec;
    const double skew_p99_cost =
        r4.p99Us > 0.0 ? rz.p99Us / r4.p99Us : 0.0;

    std::printf("{\n  \"runs\": {\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
        printRunJson(runs[i].name, reports[i], i + 1 == runs.size());
    std::printf("  },\n");
    std::printf("  \"speedup_2x\": %.3f,\n", speedup2);
    std::printf("  \"speedup_4x\": %.3f,\n", speedup4);
    std::printf("  \"zipf_p99_cost\": %.3f,\n", skew_p99_cost);
    std::printf("  \"zipf_imbalance\": %.3f\n", shardImbalance(rz));
    std::printf("}\n");

    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 2;
        }
        fleet_registry.writeJson(os);
        std::fprintf(stderr, "stats json -> %s\n",
                     stats_json_path.c_str());
    }

    morpheus::bench::BenchConfig cfg;
    cfg.ssds = 4;
    cfg.shardPolicy = "hash";
    morpheus::bench::writeBenchJson(
        "serving_fleet", "fleetSpeedup4x", speedup4, "x",
        /*higher_is_better=*/true,
        {{"speedup2x", speedup2, "x"},
         {"ssd1ThroughputPerSec", r1.throughputPerSec, "req/s"},
         {"ssd4ThroughputPerSec", r4.throughputPerSec, "req/s"},
         {"ssd4P99Us", r4.p99Us, "us"},
         {"zipfP99Us", rz.p99Us, "us"},
         {"zipfP99Cost", skew_p99_cost, "ratio"},
         {"zipfImbalance", shardImbalance(rz), "ratio"}},
        cfg);

    // ---- self-checks -------------------------------------------------
    int failures = 0;
    const auto gate = [&failures](bool ok, const char *what) {
        std::fprintf(stderr, "gate %-34s %s\n", what,
                     ok ? "pass" : "FAIL");
        if (!ok)
            ++failures;
    };
    gate(r1.completed == r1.submitted && r4.completed == r4.submitted &&
             rz.completed == rz.submitted,
         "every request completes");
    gate(speedup4 >= kMinFleetSpeedup, "4-SSD speedup >= 3x");
    gate(speedup2 > 1.0, "2-SSD speedup > 1x");
    gate(r4.shards.size() == 4, "per-shard reports present");
    if (failures) {
        std::fprintf(stderr, "%d gate(s) FAILED\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all fleet gates passed\n");
    return 0;
}
