/**
 * @file
 * Figure 8: speedup of object deserialization using Morpheus-SSD over
 * the conventional baseline, per application plus the mean.
 *
 * Paper shape: mean ~1.66x, best ~2.3x, SpMV ~1.1x (33% float tokens
 * on FPU-less embedded cores).
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Figure 8: deserialization speedup (Morpheus-SSD / "
                  "baseline)",
                  "mean 1.66x, max 2.3x, spmv ~1.1x");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);

    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %14s %14s %9s\n", "app", "baseline(ms)",
                "morpheus(ms)", "speedup");
    std::vector<double> speedups;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const double b =
            sim::ticksToSeconds(base_rows[i].metrics.deserTime) * 1e3;
        const double m =
            sim::ticksToSeconds(morph_rows[i].metrics.deserTime) * 1e3;
        const double s = b / m;
        speedups.push_back(s);
        std::printf("%-12s %14.2f %14.2f %8.2fx\n",
                    base_rows[i].app->name.c_str(), b, m, s);
    }
    std::printf("%-12s %14s %14s %8.2fx\n", "mean", "", "",
                bench::mean(speedups));
    return 0;
}
