/**
 * @file
 * Figure 8: speedup of object deserialization using Morpheus-SSD over
 * the conventional baseline, per application plus the mean.
 *
 * Paper shape: mean ~1.66x, best ~2.3x, SpMV ~1.1x (33% float tokens
 * on FPU-less embedded cores).
 */

#include <chrono>

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/**
 * Zero-overhead guard for the tracing instrumentation: tracing only
 * observes virtual time, so the simulated result must be bit-identical
 * with and without a sink attached. Re-runs one app both ways and
 * fails loudly on any drift; the wall-clock delta is informational
 * (the acceptance bar is <=1% on the untraced path, which holds
 * trivially because without a sink every instrumentation site is one
 * null-pointer branch).
 */
int
traceInvarianceCheck(const wk::AppSpec &app)
{
    wk::RunOptions opts;
    opts.mode = wk::ExecutionMode::kMorpheus;
    opts.scale = bench::benchScale();

    using Clock = std::chrono::steady_clock;
    const auto w0 = Clock::now();
    const wk::RunMetrics plain = wk::runWorkload(app, opts);
    const auto w1 = Clock::now();

    obs::InMemoryTraceSink sink;
    wk::RunMetrics traced;
    {
        const obs::ScopedTraceSink attach(sink);
        traced = wk::runWorkload(app, opts);
    }
    const auto w2 = Clock::now();

    const double plain_ms =
        std::chrono::duration<double, std::milli>(w1 - w0).count();
    const double traced_ms =
        std::chrono::duration<double, std::milli>(w2 - w1).count();
    std::printf("\ntrace-invariance check (%s): untraced %llu ticks, "
                "traced %llu ticks, %zu spans\n",
                app.name.c_str(),
                static_cast<unsigned long long>(plain.deserTime),
                static_cast<unsigned long long>(traced.deserTime),
                sink.size());
    std::printf("host wall clock: %.1f ms untraced, %.1f ms traced "
                "(informational)\n",
                plain_ms, traced_ms);
    if (plain.deserTime != traced.deserTime ||
        plain.totalTime != traced.totalTime ||
        plain.kernelChecksum != traced.kernelChecksum) {
        std::fprintf(stderr,
                     "FAIL: attaching a trace sink changed the "
                     "simulated result\n");
        return 1;
    }
    return 0;
}

}  // namespace

int
main()
{
    bench::banner("Figure 8: deserialization speedup (Morpheus-SSD / "
                  "baseline)",
                  "mean 1.66x, max 2.3x, spmv ~1.1x");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);

    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %14s %14s %9s\n", "app", "baseline(ms)",
                "morpheus(ms)", "speedup");
    std::vector<double> speedups;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const double b =
            sim::ticksToSeconds(base_rows[i].metrics.deserTime) * 1e3;
        const double m =
            sim::ticksToSeconds(morph_rows[i].metrics.deserTime) * 1e3;
        const double s = b / m;
        speedups.push_back(s);
        std::printf("%-12s %14.2f %14.2f %8.2fx\n",
                    base_rows[i].app->name.c_str(), b, m, s);
    }
    std::printf("%-12s %14s %14s %8.2fx\n", "mean", "", "",
                bench::mean(speedups));

    std::vector<bench::BenchMetric> extra;
    for (std::size_t i = 0; i < base_rows.size(); ++i)
        extra.push_back({base_rows[i].app->name + ".speedup",
                         speedups[i], "x"});
    bench::writeBenchJson("fig08", "geomeanSpeedup",
                          bench::geomean(speedups), "x",
                          /*higher_is_better=*/true, extra,
                          bench::BenchConfig{});

    return traceInvarianceCheck(*base_rows.front().app);
}
