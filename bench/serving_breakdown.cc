/**
 * @file
 * Per-request critical-path attribution under serving load.
 *
 * Runs the skewed high-load serving point twice — bare, then with the
 * full observability stack (tail-based flight recorder, critical-path
 * attribution, time-series timeline, SLO burn tracking) — and checks:
 *
 *  1. Trace invariance: the instrumented run's results are bit-
 *     identical to the bare run's (observability reads simulated time,
 *     it never perturbs it).
 *  2. The per-tenant stage breakdown is exact: the p99-ranked
 *     request's stage times sum to the measured p99 within 1%, and
 *     mean stage times sum to the mean within 1% (the attribution is
 *     gap-free and double-count-free by construction).
 *  3. The recorder retained the slowest requests and its Chrome JSON
 *     export is well formed (openable in Perfetto).
 *
 * MORPHEUS_SLOW_TRACES=<file.json> additionally writes the retained
 * slowest-K traces to disk. Emits one JSON document on stdout.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/critical_path.hh"
#include "obs/flight_recorder.hh"
#include "obs/timeline.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

wk::ServingOptions
makeOptions()
{
    wk::ServingOptions opts;
    // The tail-latency bench's headline point: 3 tenants skewed 4:1:1
    // at saturating load under the load-aware dispatcher.
    opts.durationSec = 0.02 * (morpheus::bench::benchScale() / 0.25);
    opts.seed = 42;
    const double total = 24000.0, skew = 4.0;
    const double base = total / (skew + 2.0);
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        spec.arrivalsPerSec = (t == 0) ? skew * base : base;
        opts.tenants.push_back(spec);
    }
    opts.sys.ssd.sched.placement = sched::PlacementPolicy::kLoadAware;
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;
    return opts;
}

bool
near(double a, double b, double rel_tol)
{
    const double denom = std::max(std::fabs(a), std::fabs(b));
    return denom == 0.0 || std::fabs(a - b) / denom <= rel_tol;
}

double
stageSum(const std::array<double, obs::kNumStages> &stages)
{
    double s = 0.0;
    for (const double v : stages)
        s += v;
    return s;
}

}  // namespace

int
main()
{
    std::fprintf(stderr, "== serving_breakdown: critical-path "
                         "attribution + flight recorder ==\n");

    // --- bare run: the reference results ------------------------------
    const auto t0 = std::chrono::steady_clock::now();
    const wk::ServingReport plain = wk::runServing(makeOptions());
    const auto t1 = std::chrono::steady_clock::now();

    // --- instrumented run: recorder + breakdown + timeline + SLO -----
    obs::FlightRecorderConfig frc;
    frc.slowestK = 8;
    obs::FlightRecorder recorder(frc);
    obs::Timeline timeline(100 * sim::kPsPerUs);
    wk::ServingOptions inst_opts = makeOptions();
    inst_opts.flightRecorder = &recorder;
    inst_opts.breakdown = true;
    inst_opts.timeline = &timeline;
    inst_opts.slo.enabled = true;
    inst_opts.slo.targetUs = 4000.0;
    const wk::ServingReport inst = wk::runServing(inst_opts);
    const auto t2 = std::chrono::steady_clock::now();

    bool ok = true;
    auto check = [&](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };

    // 1. Trace invariance: identical simulated results.
    check(plain.makespan == inst.makespan,
          "instrumented makespan diverged from the bare run");
    check(plain.completed == inst.completed,
          "instrumented completion count diverged");
    check(plain.p50Us == inst.p50Us && plain.p95Us == inst.p95Us &&
              plain.p99Us == inst.p99Us && plain.meanUs == inst.meanUs,
          "instrumented latency percentiles diverged");

    // 2. Attribution exactness.
    check(inst.attributed == inst.completed,
          "not every completed request was attributed");
    check(near(stageSum(inst.stageP99Us), inst.p99Us, 0.01),
          "p99 stage sum off the measured p99 by more than 1%");
    check(near(stageSum(inst.stageMeanUs), inst.meanUs, 0.01),
          "mean stage sum off the measured mean by more than 1%");
    for (const wk::TenantReport &tr : inst.tenants) {
        check(near(stageSum(tr.stageP99Us), tr.p99Us, 0.01),
              "tenant p99 stage sum off the tenant p99 by more than 1%");
        check(tr.p999Us >= tr.p99Us && tr.maxUs >= tr.p999Us,
              "tenant tail quantiles not monotone");
    }

    // 3. Recorder retention + export shape.
    const auto retained = recorder.retained();
    check(!retained.empty(), "recorder retained no traces");
    check(retained.size() <= frc.slowestK + frc.maxFailed,
          "recorder retained more than its configured budget");
    double worst_us = 0.0;
    for (const auto &rt : retained) {
        worst_us = std::max(
            worst_us, static_cast<double>(rt.meta.latency()) /
                          static_cast<double>(sim::kPsPerUs));
        check(!rt.spans.empty() || rt.meta.failed,
              "retained completed trace has no spans");
    }
    check(near(worst_us, inst.maxUs, 0.01),
          "slowest retained trace does not match the measured max");
    std::ostringstream chrome;
    recorder.writeChromeJson(chrome);
    check(chrome.str().rfind("{\"traceEvents\":[", 0) == 0,
          "slow-trace export is not a Chrome JSON document");
    if (const char *path = std::getenv("MORPHEUS_SLOW_TRACES")) {
        std::ofstream f(path);
        f << chrome.str();
        std::fprintf(stderr, "slow traces -> %s\n", path);
    }

    // 4. Timeline shape.
    check(!timeline.rows().empty(), "timeline recorded no rows");
    for (const auto &row : timeline.rows()) {
        check(row.values.size() == timeline.columns().size(),
              "timeline row width mismatch");
    }

    // --- report -------------------------------------------------------
    std::printf("{\n");
    std::printf("  \"completed\": %llu,\n",
                static_cast<unsigned long long>(inst.completed));
    std::printf("  \"p99_us\": %.2f,\n", inst.p99Us);
    std::printf("  \"p999_us\": %.2f,\n", inst.p999Us);
    std::printf("  \"max_us\": %.2f,\n", inst.maxUs);
    std::printf("  \"retained_traces\": %zu,\n", retained.size());
    std::printf("  \"timeline_rows\": %zu,\n", timeline.rows().size());
    std::printf("  \"tenants\": [\n");
    for (std::size_t i = 0; i < inst.tenants.size(); ++i) {
        const wk::TenantReport &tr = inst.tenants[i];
        std::printf("    {\"id\": %u, \"completed\": %llu, "
                    "\"p99_us\": %.2f, \"slo_burn_rate\": %.3f,\n",
                    tr.id,
                    static_cast<unsigned long long>(tr.completed),
                    tr.p99Us, tr.sloBurnRate);
        std::printf("     \"p99_breakdown_us\": {");
        for (std::size_t s = 0; s < obs::kNumStages; ++s) {
            std::printf("%s\"%s\": %.2f", s ? ", " : "",
                        obs::stageName(static_cast<obs::Stage>(s)),
                        tr.stageP99Us[s]);
        }
        std::printf("}}%s\n",
                    i + 1 == inst.tenants.size() ? "" : ",");
    }
    std::printf("  ]\n}\n");

    // Human-readable per-tenant stage shares on stderr: the "p99 is
    // 62% parse, 21% admission wait" view.
    for (const wk::TenantReport &tr : inst.tenants) {
        const double total = stageSum(tr.stageP99Us);
        std::fprintf(stderr, "tenant %u p99 %8.1f us =", tr.id,
                     tr.p99Us);
        for (std::size_t s = 0; s < obs::kNumStages; ++s) {
            if (tr.stageP99Us[s] <= 0.0)
                continue;
            std::fprintf(stderr, " %s %.0f%%",
                         obs::stageName(static_cast<obs::Stage>(s)),
                         total > 0.0
                             ? 100.0 * tr.stageP99Us[s] / total
                             : 0.0);
        }
        std::fprintf(stderr, "\n");
    }

    const double bare_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double inst_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::fprintf(stderr,
                 "BENCH_RESULT {\"bench\": \"serving_breakdown\", "
                 "\"scale\": %g, \"completed\": %llu, "
                 "\"p99_us\": %.2f, \"retained\": %zu, "
                 "\"bare_ms\": %.1f, \"instrumented_ms\": %.1f, "
                 "\"self_check\": %s}\n",
                 morpheus::bench::benchScale(),
                 static_cast<unsigned long long>(inst.completed),
                 inst.p99Us, retained.size(), bare_ms, inst_ms,
                 ok ? "true" : "false");

    bench::writeBenchJson(
        "serving_breakdown", "observedP99Us", inst.p99Us, "us",
        /*higher_is_better=*/false,
        {{"completed", static_cast<double>(inst.completed), "requests"},
         {"p999Us", inst.p999Us, "us"},
         {"retainedTraces", static_cast<double>(retained.size()),
          "traces"}},
        bench::BenchConfig{});

    std::fprintf(stderr, "self-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
