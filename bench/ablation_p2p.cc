/**
 * @file
 * Ablation: NVMe-P2P benefit vs object size. P2P removes the host
 * DRAM bounce of the H2D copy; the saving grows with the object.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: NVMe-P2P vs bounce-through-host, by "
                  "object size",
                  "P2P saving grows with the object (design choice "
                  "#4)");

    const wk::AppSpec &app = wk::findApp("bfs");
    std::printf("%-10s %12s %12s %12s %10s\n", "scale", "obj(MB)",
                "morph(ms)", "p2p(ms)", "gain");
    for (const double scale : {0.05, 0.1, 0.25, 0.5, 1.0}) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = scale;
        const auto m = wk::runWorkload(app, o);
        wk::RunOptions o2 = o;
        o2.mode = wk::ExecutionMode::kMorpheusP2p;
        const auto p = wk::runWorkload(app, o2);
        std::printf("%-10.2f %12.1f %12.2f %12.2f %9.2fx\n", scale,
                    m.objectBytesProduced / 1e6,
                    sim::ticksToSeconds(m.totalTime) * 1e3,
                    sim::ticksToSeconds(p.totalTime) * 1e3,
                    static_cast<double>(m.totalTime) /
                        static_cast<double>(p.totalTime));
    }
    return 0;
}
