/**
 * @file
 * Ablation: MREAD chunk size (the NVMe transfer-granularity limit the
 * runtime splits streams into, §V-B). Small chunks pay per-command
 * overhead; the MDTS-sized default amortizes it.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: Morpheus MREAD chunk size",
                  "per-command overhead vs amortization (design "
                  "choice, DESIGN.md #1)");

    const wk::AppSpec &app = wk::findApp("hybridsort");
    const std::uint32_t chunks_blocks[] = {8, 16, 32, 64, 128, 256};

    std::printf("%-12s %14s %10s %12s\n", "chunk", "deser(ms)",
                "speedup", "mreads");
    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    base.scale = bench::benchScale();
    const auto base_m = wk::runWorkload(app, base);

    for (const auto cb : chunks_blocks) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        o.chunkBlocks = cb;
        const auto m = wk::runWorkload(app, o);
        std::printf("%9u KiB %14.2f %9.2fx %12llu\n",
                    cb * 512 / 1024,
                    sim::ticksToSeconds(m.deserTime) * 1e3,
                    static_cast<double>(base_m.deserTime) /
                        static_cast<double>(m.deserTime),
                    static_cast<unsigned long long>(
                        m.rawTextBytes / (cb * 512) + 1));
    }
    return 0;
}
