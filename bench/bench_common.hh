/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench binary prints the rows/series of one paper artifact.
 * Default scale keeps each full-suite sweep in the seconds range;
 * override with MORPHEUS_BENCH_SCALE (a double) for bigger inputs —
 * all reported quantities are ratios or rates, so the shapes are
 * scale-invariant.
 */

#ifndef MORPHEUS_BENCH_BENCH_COMMON_HH
#define MORPHEUS_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "workloads/runner.hh"

namespace morpheus::bench {

/** Bench input scale (Table I sizes / ~800 by default). */
inline double
benchScale()
{
    if (const char *env = std::getenv("MORPHEUS_BENCH_SCALE"))
        return std::atof(env);
    return 0.25;
}

/**
 * Environment-driven tracing for bench binaries: when MORPHEUS_TRACE
 * names a file, a ChromeTraceSink is attached for the object's
 * lifetime and the trace-event JSON written at destruction. With the
 * variable unset this is inert — the bench measures the untraced path.
 */
class EnvTrace
{
  public:
    EnvTrace()
    {
        if (const char *path = std::getenv("MORPHEUS_TRACE")) {
            _path = path;
            _sink = std::make_unique<obs::ChromeTraceSink>();
            obs::setTraceSink(_sink.get());
        }
    }

    ~EnvTrace()
    {
        if (!_sink)
            return;
        obs::setTraceSink(nullptr);
        std::ofstream os(_path);
        if (os) {
            _sink->write(os);
            std::fprintf(stderr, "trace: %zu events -> %s\n",
                         _sink->size(), _path.c_str());
        } else {
            std::fprintf(stderr, "trace: cannot open %s\n",
                         _path.c_str());
        }
    }

    EnvTrace(const EnvTrace &) = delete;
    EnvTrace &operator=(const EnvTrace &) = delete;

  private:
    std::string _path;
    std::unique_ptr<obs::ChromeTraceSink> _sink;
};

/** One app's metrics under one mode. */
struct SuiteRow
{
    const workloads::AppSpec *app;
    workloads::RunMetrics metrics;
};

/** Run the whole Table I suite under @p opts (mode etc. pre-set;
 *  the scale always comes from benchScale()). */
inline std::vector<SuiteRow>
runSuite(workloads::RunOptions opts)
{
    opts.scale = benchScale();
    std::vector<SuiteRow> rows;
    for (const auto &app : workloads::standardSuite()) {
        workloads::RunMetrics m = workloads::runWorkload(app, opts);
        if (!m.validated) {
            std::fprintf(stderr,
                         "VALIDATION FAILED: %s (mode %d)\n",
                         app.name.c_str(),
                         static_cast<int>(opts.mode));
            std::exit(1);
        }
        rows.push_back(SuiteRow{&app, m});
    }
    return rows;
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Print the standard header naming the artifact being reproduced. */
inline void
banner(const char *artifact, const char *claim)
{
    std::printf("== %s ==\n", artifact);
    std::printf("paper: %s\n", claim);
    std::printf("scale: %g (set MORPHEUS_BENCH_SCALE to change)\n\n",
                benchScale());
}

/** One secondary metric in a BENCH_<name>.json report. */
struct BenchMetric
{
    std::string name;
    double value = 0.0;
    std::string unit;
};

/**
 * Configuration provenance stamped into BENCH_*.json: a result is
 * only comparable against a baseline produced under the same device
 * count, placement policy, and pipeline setting, so the file records
 * them instead of leaving the reader to guess from the bench name.
 */
struct BenchConfig
{
    unsigned ssds = 1;
    /** "hash" / "range"; "none" when the bench does not shard. */
    std::string shardPolicy = "none";
    bool pipeline = false;
    /** Object-cache provenance: a cached result is only comparable
     *  against a baseline with the same cache posture. */
    bool cacheEnabled = false;
    std::uint64_t cacheBytes = 0;
    /** "lru" / "fifo" / "frequency"; "none" while disabled. */
    std::string cachePolicy = "none";
};

/** Git revision for BENCH_*.json: MORPHEUS_GIT_REV, then the CI's
 *  GITHUB_SHA, then "unknown" (the simulator itself never shells out). */
inline std::string
benchGitRev()
{
    if (const char *rev = std::getenv("MORPHEUS_GIT_REV"))
        return rev;
    if (const char *rev = std::getenv("GITHUB_SHA"))
        return rev;
    return "unknown";
}

/**
 * Write the machine-readable result record `BENCH_<bench>.json` in the
 * working directory: the headline metric (what the CI regression gate
 * compares across PRs), the bench scale, the git revision, and any
 * secondary metrics. Simulated metrics are deterministic, so the same
 * code at the same scale produces the same file on any machine.
 */
inline void
writeBenchJson(const std::string &bench, const std::string &metric,
               double value, const std::string &unit,
               bool higher_is_better,
               const std::vector<BenchMetric> &extra = {},
               const BenchConfig &config = {})
{
    const std::string path = "BENCH_" + bench + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "BENCH json: cannot open %s\n",
                     path.c_str());
        return;
    }
    char num[64];
    const auto fmt = [&num](double v) {
        std::snprintf(num, sizeof(num), "%.17g", v);
        return num;
    };
    os << "{\n"
       << "  \"bench\": \"" << bench << "\",\n"
       << "  \"metric\": \"" << metric << "\",\n"
       << "  \"value\": " << fmt(value) << ",\n"
       << "  \"unit\": \"" << unit << "\",\n"
       << "  \"higherIsBetter\": "
       << (higher_is_better ? "true" : "false") << ",\n"
       << "  \"scale\": " << fmt(benchScale()) << ",\n"
       << "  \"gitRev\": \"" << benchGitRev() << "\",\n"
       << "  \"config\": {\"ssds\": " << config.ssds
       << ", \"shardPolicy\": \"" << config.shardPolicy
       << "\", \"pipeline\": "
       << (config.pipeline ? "true" : "false")
       << ", \"cacheEnabled\": "
       << (config.cacheEnabled ? "true" : "false")
       << ", \"cacheBytes\": " << config.cacheBytes
       << ", \"cachePolicy\": \"" << config.cachePolicy << "\"},\n"
       << "  \"metrics\": {";
    for (std::size_t i = 0; i < extra.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << "\"" << extra[i].name
           << "\": {\"value\": " << fmt(extra[i].value)
           << ", \"unit\": \"" << extra[i].unit << "\"}";
    }
    os << (extra.empty() ? "" : "\n  ") << "}\n}\n";
    std::fprintf(stderr, "BENCH json: %s=%g %s -> %s\n", metric.c_str(),
                 value, unit.c_str(), path.c_str());
}

}  // namespace morpheus::bench

#endif  // MORPHEUS_BENCH_BENCH_COMMON_HH
