/**
 * @file
 * Ablation: the streaming chunk pipeline (flash readahead +
 * double-buffered parse + coalesced flush DMA, DESIGN.md §11).
 *
 * The serial MREAD path holds flash, the embedded core, and PCIe each
 * idle while the other two work; the pipeline overlaps the three
 * stages without changing functional results or ParseCost totals. The
 * overlap is fully exposed at queue depth 1 — deeper queues already
 * overlap across commands via the shared timelines — so the ablation
 * pins queueEntries = 2 (one command in flight).
 *
 * Self-checking (the exit status is the CTest gate):
 *  - pipeline-on improves end-to-end MREAD stream latency by >= 20%
 *    on a flash-bound mix (integer app on a 2-channel, 1-die array)
 *    and >= 10% on a parse-bound mix (soft-float app on the default
 *    8-channel array);
 *  - pipeline-off is bit-deterministic (two runs, identical ticks) —
 *    the off path is the untouched serial code every figure uses;
 *  - checksums match between pipeline-on and pipeline-off runs.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

struct Mix
{
    const char *name;
    const char *app;
    double minImprovement;
    bool shrinkFlash;  ///< 2 channels x 1 die: flash-bound.
};

wk::RunOptions
mixOptions(const Mix &mix, bool pipeline_on)
{
    wk::RunOptions o;
    o.mode = wk::ExecutionMode::kMorpheus;
    o.scale = bench::benchScale();
    o.sys.queueEntries = 2;  // depth 1: serial schedule exposed
    if (mix.shrinkFlash) {
        o.sys.ssd.flash.channels = 2;
        o.sys.ssd.flash.diesPerChannel = 1;
    }
    o.sys.ssd.pipeline.enabled = pipeline_on;
    return o;
}

}  // namespace

int
main()
{
    bench::banner(
        "Ablation: streaming chunk pipeline (readahead + "
        "double-buffered parse + coalesced flush DMA)",
        "ms_stream overlap: the firmware parses while flash pages are "
        "still arriving (paper SVI-A)");

    const std::vector<Mix> mixes = {
        // Integer graph parse (~0.55 cyc/B) against a 2-channel,
        // 1-die array: flash dominates, readahead hides it.
        {"flash-bound", "bfs", 0.20, true},
        // Soft-float parse (12 cyc/float op) against the full array:
        // the core dominates, sub-buffer overlap hides fetch + flush.
        {"parse-bound", "nn", 0.10, false},
    };

    int failures = 0;
    std::vector<bench::BenchMetric> extra;
    double headline = 0.0;

    std::printf("%-12s %-6s %14s %14s %12s %8s\n", "mix", "app",
                "serial(ms)", "pipeline(ms)", "improvement", "gate");
    for (const Mix &mix : mixes) {
        const wk::AppSpec &app = wk::findApp(mix.app);

        const wk::RunMetrics off =
            wk::runWorkload(app, mixOptions(mix, false));
        const wk::RunMetrics off2 =
            wk::runWorkload(app, mixOptions(mix, false));
        const wk::RunMetrics on =
            wk::runWorkload(app, mixOptions(mix, true));

        if (!off.validated || !on.validated) {
            std::fprintf(stderr, "FAIL(%s): validation failed\n",
                         mix.name);
            ++failures;
        }
        if (off.deserTime != off2.deserTime ||
            off.totalTime != off2.totalTime ||
            off.kernelChecksum != off2.kernelChecksum) {
            std::fprintf(stderr,
                         "FAIL(%s): pipeline-off run is not "
                         "bit-deterministic\n",
                         mix.name);
            ++failures;
        }
        if (on.kernelChecksum != off.kernelChecksum) {
            std::fprintf(stderr,
                         "FAIL(%s): pipeline changed the functional "
                         "result\n",
                         mix.name);
            ++failures;
        }

        const double serial_ms =
            sim::ticksToSeconds(off.deserTime) * 1e3;
        const double pipe_ms = sim::ticksToSeconds(on.deserTime) * 1e3;
        const double improvement =
            serial_ms > 0.0 ? (serial_ms - pipe_ms) / serial_ms : 0.0;
        const bool ok = improvement >= mix.minImprovement;
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL(%s): improvement %.1f%% below the "
                         "%.0f%% gate\n",
                         mix.name, improvement * 1e2,
                         mix.minImprovement * 1e2);
            ++failures;
        }
        std::printf("%-12s %-6s %14.3f %14.3f %11.1f%% %8s\n",
                    mix.name, mix.app, serial_ms, pipe_ms,
                    improvement * 1e2, ok ? "pass" : "FAIL");

        extra.push_back({std::string(mix.name) + ".serialMs",
                         serial_ms, "ms"});
        extra.push_back({std::string(mix.name) + ".pipelineMs",
                         pipe_ms, "ms"});
        extra.push_back({std::string(mix.name) + ".improvement",
                         improvement, "fraction"});
        headline += improvement / static_cast<double>(mixes.size());
    }

    bench::BenchConfig cfg;
    cfg.pipeline = true;
    bench::writeBenchJson("ablation_pipeline", "meanImprovement",
                          headline, "fraction",
                          /*higher_is_better=*/true, extra, cfg);
    if (failures) {
        std::fprintf(stderr, "\n%d gate(s) FAILED\n", failures);
        return 1;
    }
    std::printf("\nall pipeline gates passed\n");
    return 0;
}
