/**
 * @file
 * §VII-B "slower servers": end-to-end Morpheus speedup with the host
 * underclocked to 1.2 GHz.
 *
 * Paper shape: the gain grows on slower hosts (the CPU-side
 * deserialization gets worse; the SSD-side cost is unchanged).
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

double
meanSpeedup(double freq)
{
    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    base.cpuFreqHz = freq;
    const auto b = morpheus::bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    morph.cpuFreqHz = freq;
    const auto m = morpheus::bench::runSuite(morph);

    std::vector<double> speedups;
    std::printf("%-12s", freq > 2.0e9 ? "2.5GHz" : "1.2GHz");
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double s =
            static_cast<double>(b[i].metrics.totalTime) /
            static_cast<double>(m[i].metrics.totalTime);
        speedups.push_back(s);
        std::printf(" %7.2fx", s);
    }
    const double mu = morpheus::bench::mean(speedups);
    std::printf(" | mean %.2fx\n", mu);
    return mu;
}

}  // namespace

int
main()
{
    bench::banner("Section VII-B: Morpheus end-to-end speedup on a "
                  "slower server (1.2 GHz host)",
                  "gain grows when the host CPU is slower");

    std::printf("%-12s", "host clock");
    for (const auto &app : wk::standardSuite())
        std::printf(" %8s", app.name.substr(0, 8).c_str());
    std::printf("\n");

    const double fast = meanSpeedup(2.5e9);
    const double slow = meanSpeedup(1.2e9);
    std::printf("\nmean end-to-end speedup: %.2fx at 2.5 GHz -> %.2fx "
                "at 1.2 GHz\n",
                fast, slow);
    return slow > fast ? 0 : 1;
}
