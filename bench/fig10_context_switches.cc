/**
 * @file
 * Figure 10: context-switch frequency during deserialization,
 * baseline vs Morpheus-SSD.
 *
 * Paper shape: Morpheus lowers context-switch frequency by ~98% and
 * total switches by ~97%.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Figure 10: context switches during deserialization",
                  "-98% frequency, -97% total switches");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %14s %14s %12s %12s\n", "app", "base(cs/s)",
                "morph(cs/s)", "base(count)", "morph(count)");
    std::vector<double> freq_red, count_red;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const auto &b = base_rows[i].metrics;
        const auto &m = morph_rows[i].metrics;
        std::printf("%-12s %14.0f %14.0f %12llu %12llu\n",
                    base_rows[i].app->name.c_str(),
                    b.contextSwitchesPerSec, m.contextSwitchesPerSec,
                    static_cast<unsigned long long>(
                        b.contextSwitchesDeser),
                    static_cast<unsigned long long>(
                        m.contextSwitchesDeser));
        freq_red.push_back(1.0 - m.contextSwitchesPerSec /
                                     b.contextSwitchesPerSec);
        count_red.push_back(
            1.0 - static_cast<double>(m.contextSwitchesDeser) /
                      static_cast<double>(b.contextSwitchesDeser));
    }
    std::printf("\nmean frequency reduction %.1f%%, mean count "
                "reduction %.1f%%\n",
                bench::mean(freq_red) * 100,
                bench::mean(count_red) * 100);
    return 0;
}
