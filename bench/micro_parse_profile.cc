/**
 * @file
 * §II microbenchmarks, two parts:
 *
 *  1. A real (native, google-benchmark) measurement of the serde
 *     integer parser, demonstrating it does the actual byte work the
 *     timing models account for.
 *  2. The modeled §II profile on the simulated host: the share of
 *     deserialization time spent in string-to-integer conversion
 *     proper versus file-system/syscall overhead (paper: ~15% vs
 *     ~85%), and the speedup from bypassing those overheads (paper:
 *     ~2x with the remaining code at IPC ~1.2).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "host/cpu_model.hh"
#include "host/os_model.hh"
#include "serde/scanner.hh"
#include "serde/writer.hh"
#include "workloads/generators.hh"

using namespace morpheus;

namespace {

std::vector<std::uint8_t>
intText(std::size_t n)
{
    const auto a = workloads::genIntArray(1234, static_cast<std::uint32_t>(n));
    serde::TextWriter w;
    a.serialize(w);
    return w.take();
}

void
BM_ParseIntegers(benchmark::State &state)
{
    const auto text = intText(static_cast<std::size_t>(state.range(0)));
    std::int64_t sink = 0;
    for (auto _ : state) {
        serde::TextScanner s(text.data(), text.size());
        std::int64_t v = 0;
        while (s.nextInt64(&v))
            sink += v;
        benchmark::DoNotOptimize(sink);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(text.size()));
}

void
BM_ParseDoubles(benchmark::State &state)
{
    const auto m = workloads::genCooMatrix(
        77, 1000, 1000, static_cast<std::uint32_t>(state.range(0)),
        1.0);
    serde::TextWriter w;
    m.serialize(w);
    const auto text = w.take();
    double sink = 0;
    for (auto _ : state) {
        serde::TextScanner s(text.data(), text.size());
        double v = 0;
        while (s.nextDouble(&v))
            sink += v;
        benchmark::DoNotOptimize(sink);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(text.size()));
}

BENCHMARK(BM_ParseIntegers)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ParseDoubles)->Arg(10000)->Arg(100000);

void
printModeledProfile()
{
    std::printf("\n== Section II profile (modeled host, 2.5 GHz) ==\n");
    host::HostCpu cpu(host::CpuConfig{});
    host::OsModel os(host::OsConfig{}, cpu);

    // One 64 KiB read()'s worth of "123456 " tokens.
    serde::ParseCost cost;
    cost.bytes = 65536;
    cost.intValues = 65536 / 7;
    const double convert = cpu.convertCycles(cost);
    const double overhead =
        os.config().syscallCycles +
        os.config().fsCyclesPerByte * static_cast<double>(cost.bytes) +
        2.0 * os.config().contextSwitchCycles;
    const double total = convert + overhead;
    std::printf("string-to-int conversion: %5.1f%% of deserialization "
                "time (paper: ~15%%)\n",
                100.0 * convert / total);
    std::printf("FS/syscall/locking:       %5.1f%% (paper: ~85%%)\n",
                100.0 * overhead / total);
    // The paper's text reads "speeds up file parsing by 2.?" (OCR
    // truncated); that is inconsistent with its own 15%/85% split,
    // which implies ~6.7x. We follow the split.
    std::printf("bypassing the overheads speeds parsing by %.2fx "
                "(implied by the paper's 15%%/85%% split: ~6.7x)\n",
                total / convert);
}

}  // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printModeledProfile();
    return 0;
}
