/**
 * @file
 * Ablation: number of embedded cores in the SSD. MPI apps run one
 * StorageApp instance per rank; with the paper's static
 * instance-to-core map, deserialization throughput scales with cores
 * until flash or the x4 link saturates.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: embedded core count",
                  "multi-instance (MPI) offload scales with cores "
                  "(design choice, DESIGN.md #2)");

    const wk::AppSpec &app = wk::findApp("pagerank");  // 4 ranks
    std::printf("%-8s %14s %10s\n", "cores", "deser(ms)", "vs 1 core");
    double first = 0.0;
    for (const unsigned cores : {1u, 2u, 4u, 8u}) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        o.sys.ssd.numCores = cores;
        const auto m = wk::runWorkload(app, o);
        const double ms = sim::ticksToSeconds(m.deserTime) * 1e3;
        if (first == 0.0)
            first = ms;
        std::printf("%-8u %14.2f %9.2fx\n", cores, ms, first / ms);
    }
    return 0;
}
