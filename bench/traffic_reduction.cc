/**
 * @file
 * §VII-A traffic results: Morpheus reduces PCIe-interconnect traffic
 * (objects instead of text) and CPU-memory-bus traffic (no raw buffer
 * round trips).
 *
 * Paper shape: -22% PCIe bandwidth demand, -58% CPU-memory bus
 * traffic.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Section VII-A: interconnect traffic during "
                  "deserialization",
                  "-22% PCIe traffic, -58% CPU-memory-bus traffic");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %12s %12s %8s %12s %12s %8s\n", "app",
                "pcie.b(MB)", "pcie.m(MB)", "saved", "mbus.b(MB)",
                "mbus.m(MB)", "saved");
    std::vector<double> pcie_saved, mbus_saved;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const auto &b = base_rows[i].metrics;
        const auto &m = morph_rows[i].metrics;
        const double ps = 1.0 - static_cast<double>(m.pcieBytesDeser) /
                                    static_cast<double>(
                                        b.pcieBytesDeser);
        const double ms_ = 1.0 -
                           static_cast<double>(m.membusBytesDeser) /
                               static_cast<double>(b.membusBytesDeser);
        pcie_saved.push_back(ps);
        mbus_saved.push_back(ms_);
        std::printf("%-12s %12.1f %12.1f %7.0f%% %12.1f %12.1f %7.0f%%\n",
                    base_rows[i].app->name.c_str(),
                    b.pcieBytesDeser / 1e6, m.pcieBytesDeser / 1e6,
                    ps * 100, b.membusBytesDeser / 1e6,
                    m.membusBytesDeser / 1e6, ms_ * 100);
    }
    std::printf("\nmean PCIe traffic saved %.1f%%, mean memory-bus "
                "traffic saved %.1f%%\n",
                bench::mean(pcie_saved) * 100,
                bench::mean(mbus_saved) * 100);
    return 0;
}
