/**
 * @file
 * §VII-A traffic results: Morpheus reduces PCIe-interconnect traffic
 * (objects instead of text) and CPU-memory-bus traffic (no raw buffer
 * round trips).
 *
 * Paper shape: -22% PCIe bandwidth demand, -58% CPU-memory bus
 * traffic.
 *
 * Extension (DESIGN.md §16): on-device projection & predicate
 * pushdown. A selectivity sweep over a columnar table compares
 * shipping the full table (descriptor-less scan: every row, every
 * column crosses PCIe) against the pushdown descriptor (only
 * surviving rows x projected columns cross), gating that the
 * reduction tracks the analytic bound and that the device pushdown,
 * the host fallback, and a split execution return bit-identical
 * bytes. A serving mix then shows the pushdown tenant beating the
 * full-object tenant's p99 at equal offered load.
 *
 * Exit status is the gate: any sweep or serving check failing returns
 * nonzero.
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "host/host_exec.hh"
#include "serde/columnar.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** One pushdown invocation: stream @p extent through the columnar
 *  scan applet with @p desc (empty = full scan) and read back the
 *  DMAed payload. */
struct ScanRun
{
    core::InvokeResult result;
    std::vector<std::uint8_t> payload;
};

ScanRun
runScan(host::HostSystem &sys, core::MorpheusRuntime &rt,
        const core::StandardImages &images,
        const host::FileExtent &extent,
        const std::vector<std::uint32_t> &desc, std::uint64_t out_bytes,
        sim::Tick when)
{
    core::InvokeOptions iopts;
    iopts.pushdown = desc;
    const core::DmaTarget target = rt.hostTarget(out_bytes + 64);
    const core::MsStream stream =
        rt.streamCreate(extent, when, iopts.hostCore);
    ScanRun run;
    run.result = rt.invoke(images.columnarScan, stream, target, when,
                           iopts);
    run.payload = sys.mem().store().readVec(
        target.addr, static_cast<std::size_t>(run.result.objectBytes));
    return run;
}

double
pct(double x)
{
    return x * 100.0;
}

}  // namespace

int
main()
{
    bench::banner("Section VII-A: interconnect traffic during "
                  "deserialization (+ pushdown selectivity sweep)",
                  "-22% PCIe traffic, -58% CPU-memory-bus traffic; "
                  "pushdown PCIe bytes scale with selectivity");

    // ---- part 1: the paper's baseline-vs-Morpheus traffic table ------
    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %12s %12s %8s %12s %12s %8s\n", "app",
                "pcie.b(MB)", "pcie.m(MB)", "saved", "mbus.b(MB)",
                "mbus.m(MB)", "saved");
    std::vector<double> pcie_saved, mbus_saved;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const auto &b = base_rows[i].metrics;
        const auto &m = morph_rows[i].metrics;
        const double ps = 1.0 - static_cast<double>(m.pcieBytesDeser) /
                                    static_cast<double>(
                                        b.pcieBytesDeser);
        const double ms_ = 1.0 -
                           static_cast<double>(m.membusBytesDeser) /
                               static_cast<double>(b.membusBytesDeser);
        pcie_saved.push_back(ps);
        mbus_saved.push_back(ms_);
        std::printf("%-12s %12.1f %12.1f %7.0f%% %12.1f %12.1f %7.0f%%\n",
                    base_rows[i].app->name.c_str(),
                    b.pcieBytesDeser / 1e6, m.pcieBytesDeser / 1e6,
                    ps * 100, b.membusBytesDeser / 1e6,
                    m.membusBytesDeser / 1e6, ms_ * 100);
    }
    std::printf("\nmean PCIe traffic saved %.1f%%, mean memory-bus "
                "traffic saved %.1f%%\n",
                bench::mean(pcie_saved) * 100,
                bench::mean(mbus_saved) * 100);

    // ---- part 2: pushdown selectivity sweep --------------------------
    const double scale = bench::benchScale();
    const std::uint64_t rows = std::max<std::uint64_t>(
        2048, static_cast<std::uint64_t>(100000.0 * scale));
    const std::uint32_t cols = 6;
    const std::uint32_t proj_cols = 2;
    const serde::ColumnarTableObject table =
        serde::genColumnarTable(7, rows, cols);
    const std::vector<std::uint8_t> flash = table.toFlash();

    host::HostSystem sys;
    core::MorpheusDeviceRuntime device(sys.ssd());
    core::NvmeP2p p2p(sys);
    core::MorpheusRuntime rt(sys, device, p2p);
    const core::StandardImages images = core::StandardImages::make();
    const host::FileExtent file =
        sys.createFile("columnar.sweep", flash);

    // Per-row byte accounting for the analytic reduction bound.
    std::uint64_t row_bytes = 0, proj_row_bytes = 0;
    for (std::uint32_t c = 0; c < cols; ++c) {
        const std::uint32_t cb =
            serde::columnCellBytes(table.schema[c].type);
        row_bytes += cb;
        if (c < proj_cols)
            proj_row_bytes += cb;
    }
    const double proj_fraction = static_cast<double>(proj_row_bytes) /
                                 static_cast<double>(row_bytes);

    // The full-table baseline: a descriptor-less scan ships every row
    // of every column (plus framing) over PCIe.
    const serde::ScanResult ref_full =
        serde::scanTable(flash.data(), flash.size(), serde::ScanSpec{});
    const ScanRun full = runScan(sys, rt, images, file, {},
                                 ref_full.out.size(), file.readyAt);
    bool ok = full.payload == ref_full.out;
    if (!ok)
        std::printf("FAIL: full-table device scan != reference\n");
    const double full_bytes =
        static_cast<double>(full.result.objectBytes);

    // Split geometry: device prefix = the first half of the row
    // groups, host suffix = the rest (DESIGN.md §16 split semantics).
    std::uint64_t header_bytes = 0;
    std::memcpy(&header_bytes, flash.data() + flash.size() - 28, 8);
    const std::uint64_t group_rows = table.rowGroupRows;
    const std::uint64_t group_bytes = row_bytes * group_rows;
    const std::uint64_t num_groups =
        (rows + group_rows - 1) / group_rows;
    const std::uint64_t prefix_groups = num_groups / 2;

    std::printf("\n== pushdown selectivity sweep: %llu rows x %u cols, "
                "project %u cols ==\n",
                static_cast<unsigned long long>(rows), cols, proj_cols);
    std::printf("%6s %14s %14s %10s %10s %10s %6s\n", "sel",
                "full(B)", "pushdown(B)", "cut", "bound", "rows",
                "3way");

    const double sweep[] = {0.01, 0.10, 0.50};
    double reduction_s10 = 0.0, push_bytes_s10 = 0.0;
    std::vector<bench::BenchMetric> extras;
    for (const double s : sweep) {
        const serde::ScanSpec spec =
            serde::makeSelectivitySpec(s, proj_cols, cols);
        const serde::ScanResult ref =
            serde::scanTable(flash.data(), flash.size(), spec);

        // Device pushdown.
        const ScanRun push =
            runScan(sys, rt, images, file, spec.encode(),
                    ref.out.size(), file.readyAt);
        const bool dev_ok = push.payload == ref.out &&
                            push.result.returnValue ==
                                static_cast<std::uint32_t>(
                                    ref.survivingRows);

        // Host fallback: the same shared kernel, one shot.
        const serde::ScanResult host_res =
            host::HostExecEngine::scanColumnar(flash.data(),
                                               flash.size(), spec);
        const bool host_ok = host_res.ok && host_res.out == ref.out;

        // Split execution: device prefix (no trailer), host suffix
        // (no header, base surviving from the device's return value).
        serde::ScanSpec pre = spec;
        pre.flags |= serde::kScanNoTrailer;
        host::FileExtent prefix = file;
        prefix.sizeBytes = header_bytes + prefix_groups * group_bytes;
        const ScanRun dev_pre =
            runScan(sys, rt, images, prefix, pre.encode(),
                    ref.out.size(), file.readyAt);
        serde::ScanSpec suf = spec;
        suf.flags |= serde::kScanNoHeader;
        const serde::ScanResult host_suf =
            host::HostExecEngine::scanColumnar(
                flash.data(), flash.size(), suf, prefix_groups,
                dev_pre.result.returnValue);
        std::vector<std::uint8_t> stitched = dev_pre.payload;
        stitched.insert(stitched.end(), host_suf.out.begin(),
                        host_suf.out.end());
        const bool split_ok = host_suf.ok && stitched == ref.out;

        const double push_bytes =
            static_cast<double>(push.result.objectBytes);
        const double reduction = 1.0 - push_bytes / full_bytes;
        // The analytic bound: surviving rows x projected columns is
        // (selectivity x proj-fraction) of the table payload; framing
        // overhead gets a 0.8 grace factor.
        const double bound = (1.0 - s * proj_fraction) * 0.8;
        const bool three_way = dev_ok && host_ok && split_ok;
        const bool gate = reduction >= bound && three_way;
        ok = ok && gate;
        std::printf("%5.0f%% %14.0f %14.0f %9.1f%% %9.1f%% %10llu %6s\n",
                    pct(s), full_bytes, push_bytes, pct(reduction),
                    pct(bound),
                    static_cast<unsigned long long>(ref.survivingRows),
                    three_way ? "ok" : "FAIL");
        if (!gate)
            std::printf("FAIL: selectivity %.2f: cut %.3f < bound %.3f "
                        "or identity broken (dev=%d host=%d split=%d)\n",
                        s, reduction, bound, dev_ok, host_ok, split_ok);
        if (s == 0.10) {
            reduction_s10 = reduction;
            push_bytes_s10 = push_bytes;
        }
        char key[48];
        std::snprintf(key, sizeof(key), "pushdown_cut_s%02.0f", s * 100);
        extras.push_back({key, reduction, "fraction"});
    }
    // Headline hard gate: 10% selectivity must ship <= 0.3x the full
    // table (the ISSUE acceptance floor).
    if (push_bytes_s10 > 0.3 * full_bytes) {
        std::printf("FAIL: 10%% selectivity pushdown bytes %.0f > 0.3 x "
                    "full-table %.0f\n",
                    push_bytes_s10, full_bytes);
        ok = false;
    }

    // ---- part 3: serving mix — pushdown vs full-object p99 -----------
    // Two columnar tenants at the same offered load over the same
    // table geometry: tenant 1 pushes the 10%-selectivity projection
    // down; tenant 2 ships the full table (descriptor-less scan, the
    // full-object MREAD posture). A third tenant adds mixed-format
    // (CSV) read+write background traffic.
    wk::ServingOptions sopts;
    // Closed loop: each tenant keeps a fixed number of requests in
    // flight, so per-request latency traces service time (transfer +
    // scan) rather than queue-drain position — the pushdown-vs-full
    // p99 comparison stays deterministic across bench scales.
    sopts.closedLoop = true;
    sopts.closedLoopConcurrency = 2;
    sopts.closedLoopRequests = static_cast<std::uint64_t>(
        std::max(16.0, 64.0 * (scale / 0.25)));
    sopts.seed = 42;
    // Bound concurrent instances so overload queues host-side (kQueue)
    // instead of overflowing I-SRAM into hard MINIT failures (same
    // posture as serving_tail_latency).
    sopts.sys.ssd.sched.maxInflightTotal = 12;
    {
        wk::TenantSpec t1;
        t1.id = 1;
        t1.format = wk::TenantFormat::kColumnar;
        t1.pushdown = true;
        t1.selectivity = 0.10;
        t1.projectColumns = proj_cols;
        t1.tableColumns = cols;
        t1.sizeClassValues = {4096, 16384};
        t1.sizeClassProb = {0.75, 0.25};
        t1.arrivalsPerSec = 3000.0;
        wk::TenantSpec t2 = t1;
        t2.id = 2;
        t2.pushdown = false;  // full-object baseline
        wk::TenantSpec t3;
        t3.id = 3;
        t3.format = wk::TenantFormat::kCsv;
        t3.sizeClassValues = {512, 2048};
        t3.sizeClassProb = {0.8, 0.2};
        t3.arrivalsPerSec = 2500.0;
        t3.writeFraction = 0.4;
        sopts.tenants = {t1, t2, t3};
    }
    const wk::ServingReport rep = wk::runServing(sopts);
    const wk::TenantReport &push_t = rep.tenants[0];
    const wk::TenantReport &fullo_t = rep.tenants[1];
    const wk::TenantReport &mix_t = rep.tenants[2];
    std::printf("\n== serving mix (equal offered load) ==\n");
    std::printf("tenant1 columnar+pushdown: completed %llu p99 %.1f us "
                "served %.2f MB\n",
                static_cast<unsigned long long>(push_t.completed),
                push_t.p99Us, push_t.servedBytes / 1e6);
    std::printf("tenant2 columnar full-object: completed %llu p99 %.1f "
                "us served %.2f MB\n",
                static_cast<unsigned long long>(fullo_t.completed),
                fullo_t.p99Us, fullo_t.servedBytes / 1e6);
    std::printf("tenant3 csv mixed r/w: completed %llu writes %llu "
                "writeBytes %.2f MB p99 %.1f us\n",
                static_cast<unsigned long long>(mix_t.completed),
                static_cast<unsigned long long>(mix_t.writes),
                mix_t.writeBytes / 1e6, mix_t.p99Us);
    if (!(push_t.p99Us < fullo_t.p99Us)) {
        std::printf("FAIL: pushdown p99 %.1f us !< full-object p99 %.1f "
                    "us at equal load\n",
                    push_t.p99Us, fullo_t.p99Us);
        ok = false;
    }
    if (mix_t.writes == 0) {
        std::printf("FAIL: mixed tenant completed no MWRITE traffic\n");
        ok = false;
    }

    std::printf("\npushdown gate: %s\n", ok ? "ok" : "FAIL");

    extras.push_back({"mean_pcie_saved", bench::mean(pcie_saved),
                      "fraction"});
    extras.push_back({"mean_membus_saved", bench::mean(mbus_saved),
                      "fraction"});
    extras.push_back({"full_table_bytes", full_bytes, "bytes"});
    extras.push_back({"pushdown_bytes_s10", push_bytes_s10, "bytes"});
    extras.push_back({"serving_p99_pushdown_us", push_t.p99Us, "us"});
    extras.push_back({"serving_p99_fullobject_us", fullo_t.p99Us,
                      "us"});
    extras.push_back({"serving_writes", static_cast<double>(rep.writes),
                      "count"});
    bench::writeBenchJson("traffic_reduction", "pushdown_cut_s10",
                          reduction_s10, "fraction",
                          /*higher_is_better=*/true, extras);
    return ok ? 0 : 1;
}
