/**
 * @file
 * Figure 3: effective deserialization bandwidth per I/O thread for
 * {HDD, NVMe SSD, RAM drive} x {2.5 GHz, 1.2 GHz} host clocks,
 * conventional model.
 *
 * Paper shape: at 2.5 GHz the NVMe SSD beats the HDD (~1.5x) but the
 * RAM drive is no better than the NVMe SSD (CPU bound); at 1.2 GHz
 * everything degrades and the devices converge.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

std::vector<double>
sweep(wk::BackendKind backend, double freq)
{
    wk::RunOptions o;
    o.mode = wk::ExecutionMode::kBaseline;
    o.backend = backend;
    o.cpuFreqHz = freq;
    std::vector<double> bw;
    for (const auto &row : morpheus::bench::runSuite(o))
        bw.push_back(row.metrics.effectiveBandwidthMBps);
    return bw;
}

}  // namespace

int
main()
{
    bench::banner(
        "Figure 3: effective deserialization bandwidth (MB/s per I/O "
        "thread)",
        "CPU-bound: RAM drive ~= NVMe SSD; all devices converge at "
        "1.2 GHz");

    const struct
    {
        const char *name;
        wk::BackendKind kind;
    } devices[] = {
        {"nvme-2.5GHz", wk::BackendKind::kNvme},
        {"ram-2.5GHz", wk::BackendKind::kRamDrive},
        {"hdd-2.5GHz", wk::BackendKind::kHdd},
        {"nvme-1.2GHz", wk::BackendKind::kNvme},
        {"ram-1.2GHz", wk::BackendKind::kRamDrive},
        {"hdd-1.2GHz", wk::BackendKind::kHdd},
    };

    std::vector<std::vector<double>> series;
    for (int i = 0; i < 6; ++i)
        series.push_back(
            sweep(devices[i].kind, i < 3 ? 2.5e9 : 1.2e9));

    std::printf("%-12s", "app");
    for (const auto &d : devices)
        std::printf(" %12s", d.name);
    std::printf("\n");
    const auto &suite = wk::standardSuite();
    for (std::size_t a = 0; a < suite.size(); ++a) {
        std::printf("%-12s", suite[a].name.c_str());
        for (int i = 0; i < 6; ++i)
            std::printf(" %12.1f", series[static_cast<std::size_t>(i)][a]);
        std::printf("\n");
    }
    std::printf("%-12s", "mean");
    for (int i = 0; i < 6; ++i)
        std::printf(" %12.1f",
                    bench::mean(series[static_cast<std::size_t>(i)]));
    std::printf("\n");

    // Headline: the paper's main operating point (NVMe at 2.5 GHz).
    std::vector<bench::BenchMetric> extra;
    for (int i = 0; i < 6; ++i)
        extra.push_back({std::string(devices[i].name) + ".meanMBps",
                         bench::mean(series[static_cast<std::size_t>(i)]),
                         "MB/s"});
    bench::writeBenchJson("fig03", "nvmeMeanBandwidth",
                          bench::mean(series[0]), "MB/s",
                          /*higher_is_better=*/true, extra,
                          bench::BenchConfig{});
    return 0;
}
