/**
 * @file
 * Robustness gate: open-loop serving under seeded fault injection.
 *
 * Runs the identical arrival trace four times:
 *
 *   1. fault-free with driver recovery enabled (availability baseline);
 *   2. under an active FaultPlan with the full recovery stack — driver
 *      timeouts + bounded retries, watchdog kills, per-tenant circuit
 *      breaker routing to the baseline host path;
 *   3. the recovery-off ablation (no retries, no breaker/fallback)
 *      under the same faults;
 *   4. a repeat of (2) with identical options.
 *
 * Self-checks (the exit status):
 *   - run 2 completes every submitted request (lost == 0) with
 *     p99 <= 3x the fault-free p99, while every injected fault class
 *     fired at least once;
 *   - run 3 demonstrably loses requests (lost > 0) — the faults are
 *     real, recovery is what absorbs them;
 *   - run 4's federated metrics report is byte-identical to run 2's
 *     (seeded determinism survives the whole recovery stack);
 *   - attaching an all-zero-rate plan to run 1 leaves its metrics
 *     byte-identical (inactive plan == no plan).
 *
 * Emits one JSON document on stdout; progress goes to stderr.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "obs/metrics.hh"
#include "sim/fault.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** The soak's fault schedule. Rates are tuned so every class fires at
 *  least once inside the default 20 ms window at seed 42 while the
 *  damage stays within the availability gate's tail budget. */
sim::FaultPlan
soakPlan()
{
    sim::FaultPlan plan;
    plan.mediaRate = 8e-3;
    plan.dmaRate = 6e-3;
    plan.crashRate = 3e-3;
    plan.hangRate = 6e-3;
    plan.dropRate = 8e-3;
    plan.seed = 9;
    return plan;
}

wk::ServingOptions
makeOptions(bool faults, bool recover)
{
    wk::ServingOptions opts;
    opts.durationSec = 0.02 * (morpheus::bench::benchScale() / 0.25);
    opts.seed = 42;
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        spec.arrivalsPerSec = 4000.0;
        opts.tenants.push_back(spec);
    }
    opts.sys.ssd.sched.placement = sched::PlacementPolicy::kLoadAware;
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;

    if (faults)
        opts.faults = soakPlan();
    // Recovery stays *enabled* even in the ablation: wait() must still
    // synthesize timeout completions for suppressed CQEs (disabled
    // recovery panics on them, by design). The ablation removes the
    // healing — no resubmissions, no breaker, no host fallback.
    opts.recovery.enabled = true;
    if (recover) {
        opts.breakerThreshold = 3;
    } else {
        opts.recovery.maxRetries = 0;
        opts.breakerThreshold = 0;
    }
    return opts;
}

std::string
reportString(const obs::MetricsRegistry &reg)
{
    std::ostringstream os;
    reg.report(os);
    return os.str();
}

void
printRunJson(const char *name, const wk::ServingReport &r,
             const obs::MetricsRegistry &reg, bool last)
{
    std::printf("    \"%s\": {\n", name);
    std::printf("      \"submitted\": %llu,\n",
                static_cast<unsigned long long>(r.submitted));
    std::printf("      \"completed\": %llu,\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("      \"rejected\": %llu,\n",
                static_cast<unsigned long long>(r.rejected));
    std::printf("      \"lost\": %llu,\n",
                static_cast<unsigned long long>(r.lost));
    std::printf("      \"device_failures\": %llu,\n",
                static_cast<unsigned long long>(r.deviceFailures));
    std::printf("      \"fallbacks\": %llu,\n",
                static_cast<unsigned long long>(r.fallbacks));
    std::printf("      \"driver_retries\": %llu,\n",
                static_cast<unsigned long long>(r.driverRetries));
    std::printf("      \"driver_timeouts\": %llu,\n",
                static_cast<unsigned long long>(r.driverTimeouts));
    std::printf("      \"p50_us\": %.2f,\n", r.p50Us);
    std::printf("      \"p99_us\": %.2f,\n", r.p99Us);
    std::printf("      \"max_us\": %.2f,\n", r.maxUs);
    std::printf("      \"faults\": {\"media\": %llu, \"dma\": %llu, "
                "\"crash\": %llu, \"hang\": %llu, \"drop\": %llu, "
                "\"watchdog_kills\": %llu}\n",
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.mediaErrors")),
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.dmaFaults")),
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.appCrashes")),
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.appHangs")),
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.droppedCqes")),
                static_cast<unsigned long long>(
                    reg.counter("sys.faults.watchdogKills")));
    std::printf("    }%s\n", last ? "" : ",");
}

bool
check(bool cond, const char *what)
{
    if (!cond)
        std::fprintf(stderr, "FAIL: %s\n", what);
    return cond;
}

}  // namespace

int
main()
{
    std::fprintf(stderr,
                 "== serving_fault_soak: availability under injected "
                 "faults ==\n");
    bench::EnvTrace trace;

    // Run 1: fault-free availability baseline (recovery on, no plan).
    obs::MetricsRegistry clean_reg;
    wk::ServingOptions clean_opts = makeOptions(false, true);
    clean_opts.metrics = &clean_reg;
    const wk::ServingReport clean = wk::runServing(clean_opts);
    std::fprintf(stderr,
                 "clean    : %llu/%llu completed, p99 %8.1f us\n",
                 static_cast<unsigned long long>(clean.completed),
                 static_cast<unsigned long long>(clean.submitted),
                 clean.p99Us);

    // Run 1b: identical, but with an all-zero-rate plan attached. An
    // inactive plan must install nothing: zero RNG draws, identical
    // federated metrics.
    obs::MetricsRegistry zero_reg;
    wk::ServingOptions zero_opts = makeOptions(false, true);
    zero_opts.faults = sim::FaultPlan{};  // explicit inactive plan
    zero_opts.metrics = &zero_reg;
    (void)wk::runServing(zero_opts);

    // Run 2: the same trace under fire, full recovery stack.
    obs::MetricsRegistry fault_reg;
    wk::ServingOptions fault_opts = makeOptions(true, true);
    fault_opts.metrics = &fault_reg;
    const wk::ServingReport fault = wk::runServing(fault_opts);
    std::fprintf(stderr,
                 "faulted  : %llu/%llu completed, %llu device "
                 "failures, %llu fallbacks, %llu retries, p99 %8.1f "
                 "us\n",
                 static_cast<unsigned long long>(fault.completed),
                 static_cast<unsigned long long>(fault.submitted),
                 static_cast<unsigned long long>(fault.deviceFailures),
                 static_cast<unsigned long long>(fault.fallbacks),
                 static_cast<unsigned long long>(fault.driverRetries),
                 fault.p99Us);

    // Run 3: same faults, recovery ablated — requests are lost.
    obs::MetricsRegistry ablate_reg;
    wk::ServingOptions ablate_opts = makeOptions(true, false);
    ablate_opts.metrics = &ablate_reg;
    const wk::ServingReport ablate = wk::runServing(ablate_opts);
    std::fprintf(stderr,
                 "ablated  : %llu/%llu completed, %llu lost\n",
                 static_cast<unsigned long long>(ablate.completed),
                 static_cast<unsigned long long>(ablate.submitted),
                 static_cast<unsigned long long>(ablate.lost));

    // Run 4: run 2 again — the whole faulted run must be bit-stable.
    obs::MetricsRegistry repeat_reg;
    wk::ServingOptions repeat_opts = makeOptions(true, true);
    repeat_opts.metrics = &repeat_reg;
    (void)wk::runServing(repeat_opts);

    // Run 5: run 2's schedule with the streaming chunk pipeline on.
    // Readahead, sub-buffer parse, and coalesced flushes overlap the
    // stages but must not change fault semantics: nothing lost, every
    // request completed or terminally rejected.
    obs::MetricsRegistry pipe_reg;
    wk::ServingOptions pipe_opts = makeOptions(true, true);
    pipe_opts.sys.ssd.pipeline.enabled = true;
    pipe_opts.metrics = &pipe_reg;
    const wk::ServingReport pipe = wk::runServing(pipe_opts);
    std::fprintf(stderr,
                 "pipelined: %llu/%llu completed, %llu device "
                 "failures, p99 %8.1f us\n",
                 static_cast<unsigned long long>(pipe.completed),
                 static_cast<unsigned long long>(pipe.submitted),
                 static_cast<unsigned long long>(pipe.deviceFailures),
                 pipe.p99Us);

    // Run 6: run 2's schedule with the object cache on. Hot objects
    // are replayed from controller DRAM, but fault semantics must
    // hold: a crashed or media-faulted stream never populates the
    // cache, so availability and correctness survive unchanged.
    obs::MetricsRegistry cache_reg;
    wk::ServingOptions cache_opts = makeOptions(true, true);
    cache_opts.sys.ssd.cache.enabled = true;
    cache_opts.metrics = &cache_reg;
    const wk::ServingReport cached = wk::runServing(cache_opts);
    std::fprintf(stderr,
                 "cached   : %llu/%llu completed, %llu cache hits, "
                 "%llu device failures, p99 %8.1f us\n",
                 static_cast<unsigned long long>(cached.completed),
                 static_cast<unsigned long long>(cached.submitted),
                 static_cast<unsigned long long>(cached.cacheHits),
                 static_cast<unsigned long long>(cached.deviceFailures),
                 cached.p99Us);

    // Run 7: run 2's schedule with hybrid host/device execution on.
    // Overload spill, splits, and faults now interleave, but the
    // availability contract must hold unchanged: nothing lost, bounded
    // tail, and the whole hybrid run bit-deterministic in its seed
    // (run 7b repeats it with identical options).
    obs::MetricsRegistry hybrid_reg;
    wk::ServingOptions hybrid_opts = makeOptions(true, true);
    hybrid_opts.hybrid.enabled = true;
    hybrid_opts.metrics = &hybrid_reg;
    const wk::ServingReport hybrid = wk::runServing(hybrid_opts);
    obs::MetricsRegistry hybrid2_reg;
    wk::ServingOptions hybrid2_opts = makeOptions(true, true);
    hybrid2_opts.hybrid.enabled = true;
    hybrid2_opts.metrics = &hybrid2_reg;
    (void)wk::runServing(hybrid2_opts);
    std::fprintf(
        stderr,
        "hybrid   : %llu/%llu completed, %llu fallbacks "
        "(%llu breaker / %llu overload / %llu probe), %llu splits, "
        "p99 %8.1f us\n",
        static_cast<unsigned long long>(hybrid.completed),
        static_cast<unsigned long long>(hybrid.submitted),
        static_cast<unsigned long long>(hybrid.fallbacks),
        static_cast<unsigned long long>(hybrid.fallbackBreaker),
        static_cast<unsigned long long>(hybrid.fallbackOverload),
        static_cast<unsigned long long>(hybrid.fallbackProbe),
        static_cast<unsigned long long>(hybrid.splitRequests),
        hybrid.p99Us);

    bool ok = true;
    // Availability: with recovery on, nothing is lost — every request
    // either completes (device path or fallback) or is terminally
    // rejected by admission, under faults exactly as without them.
    ok &= check(clean.lost == 0, "clean run lost requests");
    ok &= check(clean.deviceFailures == 0,
                "clean run saw device failures");
    ok &= check(fault.lost == 0, "faulted run lost requests");
    ok &= check(fault.completed + fault.rejected == fault.submitted,
                "faulted run: completed+rejected != submitted");
    // Bounded degradation: the tail may inflate, but not past 3x.
    ok &= check(fault.p99Us <= 3.0 * clean.p99Us,
                "faulted p99 exceeds 3x fault-free p99");
    // The soak actually exercised every fault class and every
    // recovery mechanism.
    ok &= check(fault_reg.counter("sys.faults.mediaErrors") >= 1,
                "no media errors fired");
    ok &= check(fault_reg.counter("sys.faults.dmaFaults") >= 1,
                "no DMA faults fired");
    ok &= check(fault_reg.counter("sys.faults.appCrashes") >= 1,
                "no app crashes fired");
    ok &= check(fault_reg.counter("sys.faults.appHangs") >= 1,
                "no app hangs fired");
    ok &= check(fault_reg.counter("sys.faults.droppedCqes") >= 1,
                "no CQEs dropped");
    ok &= check(fault_reg.counter("sys.faults.watchdogKills") >= 1,
                "watchdog never killed a hung instance");
    ok &= check(fault.deviceFailures >= 1, "no device-path failures");
    ok &= check(fault.fallbacks >= 1, "host fallback never used");
    ok &= check(fault.driverRetries >= 1, "driver never retried");
    // The ablation proves the faults are load-bearing: without
    // retries/fallback the same schedule loses requests — and, since
    // breakerThreshold == 0 disables the breaker entirely, the host
    // fallback path must never have run.
    ok &= check(ablate.lost > 0, "ablated run lost nothing");
    ok &= check(ablate.fallbacks == 0,
                "recovery-off ablation used the host fallback");
    // Hybrid execution under fire preserves the same contract and is
    // itself bit-deterministic.
    ok &= check(hybrid.lost == 0, "hybrid faulted run lost requests");
    ok &= check(hybrid.completed + hybrid.rejected == hybrid.submitted,
                "hybrid run: completed+rejected != submitted");
    ok &= check(hybrid.p99Us <= 3.0 * clean.p99Us,
                "hybrid faulted p99 exceeds 3x fault-free p99");
    ok &= check(hybrid.fallbacks == hybrid.fallbackBreaker +
                                        hybrid.fallbackOverload +
                                        hybrid.fallbackProbe,
                "per-reason fallback counters do not sum to total");
    ok &= check(reportString(hybrid_reg) == reportString(hybrid2_reg),
                "hybrid faulted rerun not bit-identical");
    // The pipeline preserves the availability contract under fire.
    ok &= check(pipe.lost == 0, "pipelined faulted run lost requests");
    ok &= check(pipe.completed + pipe.rejected == pipe.submitted,
                "pipelined run: completed+rejected != submitted");
    ok &= check(pipe.p99Us <= 3.0 * clean.p99Us,
                "pipelined faulted p99 exceeds 3x fault-free p99");
    // The object cache preserves the availability contract under fire
    // and actually serves hits (the request mix repeats hot objects).
    ok &= check(cached.lost == 0, "cached faulted run lost requests");
    ok &= check(cached.completed + cached.rejected == cached.submitted,
                "cached run: completed+rejected != submitted");
    ok &= check(cached.cacheHits >= 1,
                "cache never hit under the soak's repeating mix");
    ok &= check(cache_reg.counter("sys.morpheus.cache.insertions") >= 1,
                "cache never populated");
    // Determinism guards.
    ok &= check(reportString(fault_reg) == reportString(repeat_reg),
                "faulted rerun not bit-identical");
    ok &= check(reportString(clean_reg) == reportString(zero_reg),
                "zero-rate plan perturbed the clean run");

    std::printf("{\n  \"runs\": {\n");
    printRunJson("clean", clean, clean_reg, false);
    printRunJson("faulted", fault, fault_reg, false);
    printRunJson("ablated", ablate, ablate_reg, true);
    std::printf("  },\n");
    std::printf("  \"p99_inflation\": %.3f,\n",
                clean.p99Us > 0.0 ? fault.p99Us / clean.p99Us : 0.0);
    std::printf("  \"self_check\": %s\n}\n", ok ? "true" : "false");

    std::fprintf(stderr,
                 "BENCH_RESULT {\"bench\": \"serving_fault_soak\", "
                 "\"scale\": %g, \"clean_p99_us\": %.2f, "
                 "\"faulted_p99_us\": %.2f, \"lost_ablated\": %llu, "
                 "\"self_check\": %s}\n",
                 morpheus::bench::benchScale(), clean.p99Us,
                 fault.p99Us,
                 static_cast<unsigned long long>(ablate.lost),
                 ok ? "true" : "false");
    std::fprintf(stderr, "self-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
