/**
 * @file
 * Table I: the benchmark applications, their suites, parallel models,
 * and input sizes (paper sizes and the scaled sizes generated here).
 */

#include "bench_common.hh"
#include "workloads/objects.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

const char *
parallelName(wk::ParallelModel p)
{
    switch (p) {
      case wk::ParallelModel::kMpi:
        return "MPI";
      case wk::ParallelModel::kCuda:
        return "CUDA";
      case wk::ParallelModel::kSerial:
        return "N/A";
    }
    return "?";
}

const char *
objectName(wk::ObjectKind k)
{
    switch (k) {
      case wk::ObjectKind::kEdgeList:
        return "edge list";
      case wk::ObjectKind::kEdgeListWeighted:
        return "weighted edge list";
      case wk::ObjectKind::kMatrix:
        return "dense matrix";
      case wk::ObjectKind::kIntArray:
        return "integer array";
      case wk::ObjectKind::kPointSet:
        return "point set";
      case wk::ObjectKind::kCooMatrix:
        return "sparse COO matrix";
      case wk::ObjectKind::kCsvTable:
        return "CSV table";
      case wk::ObjectKind::kJsonRecords:
        return "JSON records";
    }
    return "?";
}

}  // namespace

int
main()
{
    bench::banner("Table I: applications and input sizes",
                  "10 apps from BigDataBench / Rodinia / standalone, "
                  "text inputs up to 3.6 GB");

    std::printf("%-12s %-14s %-6s %-19s %12s %14s %9s\n", "app",
                "suite", "model", "object", "paper input",
                "scaled input", "float%");
    for (const auto &app : wk::standardSuite()) {
        const auto obj = app.generate(42, bench::benchScale());
        const auto text = wk::serializeObject(obj);
        std::printf("%-12s %-14s %-6s %-19s %9.2f GB %11.2f MB %8.0f%%\n",
                    app.name.c_str(), app.suite.c_str(),
                    parallelName(app.parallel),
                    objectName(app.object),
                    static_cast<double>(app.paperInputBytes) / 1e9,
                    static_cast<double>(text.size()) / 1e6,
                    app.floatFraction * 100.0);
    }
    return 0;
}
