/**
 * @file
 * §III/§VII claim: "The Morpheus model improves resource utilization
 * in the CPU ... allowing the CPU to devote its resources to other,
 * higher-IPC processes" — the host cores go (nearly) idle during
 * deserialization.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Section VII-A: host CPU load during "
                  "deserialization",
                  "Morpheus frees the host cores (they sleep while "
                  "the SSD parses)");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto b = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto m = bench::runSuite(morph);

    std::printf("%-12s %16s %16s\n", "app", "base(busy cores)",
                "morph(busy cores)");
    std::vector<double> saved;
    for (std::size_t i = 0; i < b.size(); ++i) {
        std::printf("%-12s %16.2f %16.3f\n", b[i].app->name.c_str(),
                    b[i].metrics.cpuBusyCoresDeser,
                    m[i].metrics.cpuBusyCoresDeser);
        saved.push_back(1.0 - m[i].metrics.cpuBusyCoresDeser /
                                  b[i].metrics.cpuBusyCoresDeser);
    }
    std::printf("\nmean host-CPU load reduction during "
                "deserialization: %.1f%%\n",
                bench::mean(saved) * 100);
    return 0;
}
