/**
 * @file
 * Ablation: D-SRAM staging budget (paper §V-A restriction 3: the
 * StorageApp working set is bounded by D-SRAM; bigger staging batches
 * DMA flushes, smaller staging flushes often).
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: StorageApp staging (ms_memcpy flush) "
                  "threshold",
                  "D-SRAM working-set limit forces streaming flushes "
                  "(design choice #5)");

    const wk::AppSpec &app = wk::findApp("kmeans");
    std::printf("%-12s %14s\n", "staging", "deser(ms)");
    for (const std::uint32_t threshold :
         {2u * 1024, 8u * 1024, 32u * 1024, 64u * 1024}) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        // Thread the flush threshold through the embedded-core D-SRAM
        // size: the device default threshold is D-SRAM / 4.
        o.sys.ssd.core.dsramBytes = threshold * 4;
        const auto m = wk::runWorkload(app, o);
        std::printf("%9u KiB %14.2f\n", threshold / 1024,
                    sim::ticksToSeconds(m.deserTime) * 1e3);
    }
    return 0;
}
