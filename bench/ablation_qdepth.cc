/**
 * @file
 * Ablation: NVMe queue depth. The Morpheus runtime batches MREADs up
 * to the queue depth and sleeps until the batch completes — this is
 * the Fig 10 mechanism (context switches per *batch*, not per chunk).
 * Shallow queues force more wakeups and leave the device idle between
 * batches.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Ablation: NVMe queue depth (Morpheus MREAD "
                  "batching)",
                  "deep queues amortize the host wakeups Fig 10 "
                  "counts");

    const wk::AppSpec &app = wk::findApp("bfs");
    std::printf("%-8s %14s %14s %14s\n", "depth", "deser(ms)",
                "ctx-switches", "cs/s");
    for (const std::uint16_t depth : {4, 8, 16, 64, 256}) {
        wk::RunOptions o;
        o.mode = wk::ExecutionMode::kMorpheus;
        o.scale = bench::benchScale();
        o.chunkBlocks = 32;  // 16 KiB chunks -> many commands
        o.sys.queueEntries = depth;
        const auto m = wk::runWorkload(app, o);
        std::printf("%-8u %14.2f %14llu %14.0f\n", depth,
                    sim::ticksToSeconds(m.deserTime) * 1e3,
                    static_cast<unsigned long long>(
                        m.contextSwitchesDeser),
                    m.contextSwitchesPerSec);
    }
    return 0;
}
