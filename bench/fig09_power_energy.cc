/**
 * @file
 * Figure 9: normalized total-system power and energy during object
 * deserialization, Morpheus-SSD vs baseline.
 *
 * Paper shape: power down ~7% on average (max ~17%); energy down ~42%
 * (power saving compounds with the shorter phase).
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Figure 9: normalized power and energy during "
                  "deserialization",
                  "-7% power (mean), up to -17%; -42% energy");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto base_rows = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto morph_rows = bench::runSuite(morph);

    std::printf("%-12s %10s %10s %10s %10s %10s %10s\n", "app",
                "P.base(W)", "P.morph(W)", "P.norm", "E.base(J)",
                "E.morph(J)", "E.norm");
    std::vector<double> p_norm, e_norm;
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
        const auto &b = base_rows[i].metrics;
        const auto &m = morph_rows[i].metrics;
        const double pn = m.deserPowerWatts / b.deserPowerWatts;
        const double en = m.deserEnergyJoules / b.deserEnergyJoules;
        p_norm.push_back(pn);
        e_norm.push_back(en);
        std::printf("%-12s %10.1f %10.1f %10.3f %10.4f %10.4f %10.3f\n",
                    base_rows[i].app->name.c_str(), b.deserPowerWatts,
                    m.deserPowerWatts, pn, b.deserEnergyJoules,
                    m.deserEnergyJoules, en);
    }
    std::printf("%-12s %21s %10.3f %21s %10.3f\n", "mean", "",
                bench::mean(p_norm), "", bench::mean(e_norm));
    return 0;
}
