/**
 * @file
 * Extension study: the CSV and JSON interchange formats §II motivates,
 * quantified with the same three-path comparison as the Table I suite.
 * (Not a paper figure — the paper evaluates token-text inputs only —
 * but the question "does in-storage deserialization still pay for
 * structured formats?" follows directly from its motivation.)
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Extension: CSV and JSON deserialization offload",
                  "the §II format motivation, quantified");

    // CSV/JSON deserialize every cell through the floating-point
    // path, so (unlike the integer-dominated Table I inputs) the
    // FPU-less cores lose — the SpMV effect writ large. The paper's
    // predicted "next generation of SSD processors" with native FP
    // support recovers the offload win.
    std::printf("%-12s %6s %14s %12s %12s\n", "app", "ranks",
                "baseline(ms)", "no-FPU", "with-FPU");
    for (const auto &app : wk::extensionSuite()) {
        wk::RunOptions base;
        base.mode = wk::ExecutionMode::kBaseline;
        base.scale = bench::benchScale();
        const auto b = wk::runWorkload(app, base);
        wk::RunOptions morph = base;
        morph.mode = wk::ExecutionMode::kMorpheus;
        const auto m_soft = wk::runWorkload(app, morph);
        morph.sys.ssd.core.hasFpu = true;
        const auto m_fpu = wk::runWorkload(app, morph);
        if (!b.validated || !m_soft.validated || !m_fpu.validated) {
            std::fprintf(stderr, "VALIDATION FAILED: %s\n",
                         app.name.c_str());
            return 1;
        }
        std::printf("%-12s %6u %14.2f %11.2fx %11.2fx\n",
                    app.name.c_str(), app.ranks,
                    sim::ticksToSeconds(b.deserTime) * 1e3,
                    static_cast<double>(b.deserTime) /
                        static_cast<double>(m_soft.deserTime),
                    static_cast<double>(b.deserTime) /
                        static_cast<double>(m_fpu.deserTime));
    }
    return 0;
}
