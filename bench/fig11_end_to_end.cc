/**
 * @file
 * §VII-B / end-to-end results: total execution time under the three
 * execution paths — baseline, Morpheus, Morpheus + NVMe-P2P (the P2P
 * column only differs for the CUDA apps; the others fall back to
 * plain Morpheus).
 *
 * Paper shape: Morpheus ~1.32x end-to-end on average; with NVMe-P2P
 * ~1.39x on the heterogeneous (GPU) platform.
 */

#include "bench_common.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

int
main()
{
    bench::banner("Section VII-B: end-to-end execution time",
                  "Morpheus 1.32x, Morpheus+NVMe-P2P 1.39x");

    wk::RunOptions base;
    base.mode = wk::ExecutionMode::kBaseline;
    const auto b = bench::runSuite(base);
    wk::RunOptions morph;
    morph.mode = wk::ExecutionMode::kMorpheus;
    const auto m = bench::runSuite(morph);
    wk::RunOptions p2p;
    p2p.mode = wk::ExecutionMode::kMorpheusP2p;
    const auto p = bench::runSuite(p2p);

    std::printf("%-12s %12s %12s %12s %9s %9s\n", "app", "base(ms)",
                "morph(ms)", "p2p(ms)", "morph", "p2p");
    std::vector<double> s_morph, s_p2p;
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double tb = sim::ticksToSeconds(b[i].metrics.totalTime);
        const double tm = sim::ticksToSeconds(m[i].metrics.totalTime);
        const double tp = sim::ticksToSeconds(p[i].metrics.totalTime);
        s_morph.push_back(tb / tm);
        s_p2p.push_back(tb / tp);
        std::printf("%-12s %12.2f %12.2f %12.2f %8.2fx %8.2fx\n",
                    b[i].app->name.c_str(), tb * 1e3, tm * 1e3,
                    tp * 1e3, tb / tm, tb / tp);
    }
    std::printf("%-12s %38s %8.2fx %8.2fx\n", "mean", "",
                bench::mean(s_morph), bench::mean(s_p2p));
    return 0;
}
