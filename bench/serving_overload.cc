/**
 * @file
 * Overload gate: graceful degradation past device saturation.
 *
 * The paper sizes one Morpheus-SSD's embedded cores for its offered
 * load; past saturation a device-only deployment's tail collapses,
 * and a host-only deployment (the Fig 1 baseline path) caps out at
 * the host CPU's conversion rate. The hybrid execution layer
 * (sched::HybridPlacementPolicy + host::HostExecEngine) should beat
 * both at the same offered load by spilling and splitting across the
 * two executors, and shed the residual overload deterministically.
 *
 * Procedure:
 *   1. calibrate the device path's saturation throughput S with a
 *      closed-loop run (self-throttled, so the measured rate IS the
 *      service capacity);
 *   2. measure the pre-saturation p99 with an open-loop run at 0.5 x S
 *      under the hybrid config (which keeps everything on the device
 *      at that load);
 *   3. run the identical open-loop arrival trace at 1.6 x S three
 *      ways: device-only, host-only (forceHost), and hybrid
 *      (spill + split + shed);
 *   4. repeat the hybrid run with identical options.
 *
 * Self-checks (the exit status):
 *   - no run loses a request;
 *   - hybrid completed-throughput beats BOTH single-executor runs;
 *   - hybrid p99 stays within 3x the pre-saturation p99 (bounded
 *     degradation, not collapse);
 *   - the per-reason fallback counters sum to the fallback total;
 *   - the repeated hybrid run's federated metrics are byte-identical
 *     (the whole placement layer is bit-deterministic in its seed).
 *
 * Emits one JSON document on stdout; progress goes to stderr.
 */

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "obs/metrics.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** The hybrid posture under test: spill + split + shed. */
sched::HybridConfig
hybridConfig()
{
    sched::HybridConfig h;
    h.enabled = true;
    h.shed = true;
    // Shed as soon as BOTH sides sit at their watermarks: at 1.6x
    // saturation the residual load has nowhere useful to queue, and
    // bouncing it is what keeps the completed requests' tail bounded.
    h.shedFactor = 1.0;
    h.shedMaxBounces = 3;
    h.shedRetryUs = 150;
    // Keep the host-side queue short: past ~500 us of queued host
    // work the host stops being a useful place to send overflow.
    h.hostHighUs = 500.0;
    return h;
}

wk::ServingOptions
baseOptions()
{
    wk::ServingOptions opts;
    opts.durationSec = 0.02 * (morpheus::bench::benchScale() / 0.25);
    opts.seed = 42;
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        opts.tenants.push_back(spec);
    }
    opts.sys.ssd.sched.placement = sched::PlacementPolicy::kLoadAware;
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;
    return opts;
}

void
setRate(wk::ServingOptions &opts, double total_rate)
{
    for (wk::TenantSpec &t : opts.tenants)
        t.arrivalsPerSec =
            total_rate / static_cast<double>(opts.tenants.size());
}

std::string
reportString(const obs::MetricsRegistry &reg)
{
    std::ostringstream os;
    reg.report(os);
    return os.str();
}

void
printRunJson(const char *name, const wk::ServingReport &r, bool last)
{
    std::printf("    \"%s\": {\n", name);
    std::printf("      \"submitted\": %llu,\n",
                static_cast<unsigned long long>(r.submitted));
    std::printf("      \"completed\": %llu,\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("      \"rejected\": %llu,\n",
                static_cast<unsigned long long>(r.rejected));
    std::printf("      \"lost\": %llu,\n",
                static_cast<unsigned long long>(r.lost));
    std::printf("      \"throughput_per_sec\": %.0f,\n",
                r.throughputPerSec);
    std::printf("      \"fallbacks\": {\"breaker\": %llu, "
                "\"overload\": %llu, \"probe\": %llu},\n",
                static_cast<unsigned long long>(r.fallbackBreaker),
                static_cast<unsigned long long>(r.fallbackOverload),
                static_cast<unsigned long long>(r.fallbackProbe));
    std::printf("      \"splits\": %llu,\n",
                static_cast<unsigned long long>(r.splitRequests));
    std::printf("      \"shed\": {\"bounces\": %llu, "
                "\"rejected\": %llu},\n",
                static_cast<unsigned long long>(r.shedBounces),
                static_cast<unsigned long long>(r.shedRejected));
    std::printf("      \"placements\": {\"device\": %llu, "
                "\"host\": %llu, \"split\": %llu, \"shed\": %llu, "
                "\"flips\": %llu},\n",
                static_cast<unsigned long long>(r.hybridDecisions[0]),
                static_cast<unsigned long long>(r.hybridDecisions[1]),
                static_cast<unsigned long long>(r.hybridDecisions[2]),
                static_cast<unsigned long long>(r.hybridDecisions[3]),
                static_cast<unsigned long long>(r.hybridFlips));
    std::printf("      \"p50_us\": %.2f,\n", r.p50Us);
    std::printf("      \"p99_us\": %.2f,\n", r.p99Us);
    std::printf("      \"max_us\": %.2f\n", r.maxUs);
    std::printf("    }%s\n", last ? "" : ",");
}

bool
check(bool cond, const char *what)
{
    if (!cond)
        std::fprintf(stderr, "FAIL: %s\n", what);
    return cond;
}

}  // namespace

int
main()
{
    std::fprintf(stderr,
                 "== serving_overload: hybrid execution past device "
                 "saturation ==\n");
    bench::EnvTrace trace;

    // 1. Calibrate device-path saturation with a closed loop: the
    // self-throttled completion rate is the service capacity.
    wk::ServingOptions cal_opts = baseOptions();
    cal_opts.closedLoop = true;
    cal_opts.closedLoopConcurrency = 8;
    cal_opts.closedLoopRequests = static_cast<std::uint64_t>(
        64.0 * (morpheus::bench::benchScale() / 0.25));
    if (cal_opts.closedLoopRequests < 16)
        cal_opts.closedLoopRequests = 16;
    const wk::ServingReport cal = wk::runServing(cal_opts);
    const double saturation = cal.throughputPerSec;
    std::fprintf(stderr, "saturation: %.0f req/s (closed loop)\n",
                 saturation);

    // 2. Pre-saturation tail under the hybrid config at 0.5 x S; the
    // policy keeps everything on the device at that load.
    wk::ServingOptions pre_opts = baseOptions();
    pre_opts.hybrid = hybridConfig();
    setRate(pre_opts, 0.5 * saturation);
    const wk::ServingReport pre = wk::runServing(pre_opts);
    std::fprintf(stderr, "pre-saturation: p99 %8.1f us at 0.5x\n",
                 pre.p99Us);

    // 3. The same offered load at 1.6 x S, three ways.
    const double offered = 1.6 * saturation;

    wk::ServingOptions dev_opts = baseOptions();
    setRate(dev_opts, offered);
    const wk::ServingReport dev = wk::runServing(dev_opts);
    std::fprintf(stderr,
                 "device-only: %llu completed, %.0f req/s, "
                 "p99 %8.1f us\n",
                 static_cast<unsigned long long>(dev.completed),
                 dev.throughputPerSec, dev.p99Us);

    wk::ServingOptions host_opts = baseOptions();
    host_opts.hybrid = hybridConfig();
    host_opts.hybrid.forceHost = true;
    host_opts.hybrid.shed = false;
    setRate(host_opts, offered);
    const wk::ServingReport host = wk::runServing(host_opts);
    std::fprintf(stderr,
                 "host-only  : %llu completed, %.0f req/s, "
                 "p99 %8.1f us\n",
                 static_cast<unsigned long long>(host.completed),
                 host.throughputPerSec, host.p99Us);

    obs::MetricsRegistry hy_reg;
    wk::ServingOptions hy_opts = baseOptions();
    hy_opts.hybrid = hybridConfig();
    hy_opts.metrics = &hy_reg;
    setRate(hy_opts, offered);
    const wk::ServingReport hy = wk::runServing(hy_opts);
    std::fprintf(stderr,
                 "hybrid     : %llu completed, %.0f req/s, "
                 "p99 %8.1f us (%llu spill, %llu split, %llu shed "
                 "bounces)\n",
                 static_cast<unsigned long long>(hy.completed),
                 hy.throughputPerSec, hy.p99Us,
                 static_cast<unsigned long long>(hy.fallbackOverload),
                 static_cast<unsigned long long>(hy.splitRequests),
                 static_cast<unsigned long long>(hy.shedBounces));

    // 4. Determinism: the identical hybrid run, byte for byte.
    obs::MetricsRegistry hy2_reg;
    wk::ServingOptions hy2_opts = baseOptions();
    hy2_opts.hybrid = hybridConfig();
    hy2_opts.metrics = &hy2_reg;
    setRate(hy2_opts, offered);
    (void)wk::runServing(hy2_opts);

    bool ok = true;
    ok &= check(cal.lost == 0 && pre.lost == 0 && dev.lost == 0 &&
                    host.lost == 0 && hy.lost == 0,
                "a run lost requests");
    ok &= check(hy.completed + hy.rejected == hy.submitted,
                "hybrid run: completed+rejected != submitted");
    // Capacity: hybrid beats both single-executor deployments at the
    // same offered load.
    ok &= check(hy.throughputPerSec > dev.throughputPerSec,
                "hybrid does not beat device-only throughput");
    ok &= check(hy.throughputPerSec > host.throughputPerSec,
                "hybrid does not beat host-only throughput");
    // Bounded degradation: the tail inflates, but does not collapse.
    ok &= check(hy.p99Us <= 3.0 * pre.p99Us,
                "hybrid p99 exceeds 3x the pre-saturation p99");
    // The hybrid layer actually engaged (the comparison is not
    // vacuous) and its accounting is closed.
    ok &= check(hy.fallbackOverload + hy.splitRequests > 0,
                "hybrid never spilled or split");
    ok &= check(hy.fallbacks == hy.fallbackBreaker +
                                    hy.fallbackOverload +
                                    hy.fallbackProbe,
                "per-reason fallback counters do not sum to total");
    ok &= check(reportString(hy_reg) == reportString(hy2_reg),
                "hybrid rerun not bit-identical");

    const double best_single =
        std::max(dev.throughputPerSec, host.throughputPerSec);
    const double gain =
        best_single > 0.0 ? hy.throughputPerSec / best_single : 0.0;

    std::printf("{\n  \"saturation_per_sec\": %.0f,\n", saturation);
    std::printf("  \"offered_per_sec\": %.0f,\n", offered);
    std::printf("  \"pre_saturation_p99_us\": %.2f,\n", pre.p99Us);
    std::printf("  \"runs\": {\n");
    printRunJson("device_only", dev, false);
    printRunJson("host_only", host, false);
    printRunJson("hybrid", hy, true);
    std::printf("  },\n");
    std::printf("  \"hybrid_gain\": %.3f,\n", gain);
    std::printf("  \"self_check\": %s\n}\n", ok ? "true" : "false");

    bench::BenchConfig cfg;
    bench::writeBenchJson(
        "serving_overload", "hybridThroughputGain", gain, "x",
        /*higher_is_better=*/true,
        {{"saturationPerSec", saturation, "req/s"},
         {"deviceOnlyPerSec", dev.throughputPerSec, "req/s"},
         {"hostOnlyPerSec", host.throughputPerSec, "req/s"},
         {"hybridPerSec", hy.throughputPerSec, "req/s"},
         {"preSaturationP99Us", pre.p99Us, "us"},
         {"hybridP99Us", hy.p99Us, "us"},
         {"p99Inflation",
          pre.p99Us > 0.0 ? hy.p99Us / pre.p99Us : 0.0, "x"}},
        cfg);

    std::fprintf(stderr,
                 "BENCH_RESULT {\"bench\": \"serving_overload\", "
                 "\"scale\": %g, \"hybrid_gain\": %.3f, "
                 "\"p99_inflation\": %.3f, \"self_check\": %s}\n",
                 morpheus::bench::benchScale(), gain,
                 pre.p99Us > 0.0 ? hy.p99Us / pre.p99Us : 0.0,
                 ok ? "true" : "false");
    std::fprintf(stderr, "self-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
