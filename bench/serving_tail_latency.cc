/**
 * @file
 * Beyond-paper extension: multi-tenant open-loop serving tails.
 *
 * Sweeps tenant skew (one hot tenant vs. two cold ones) and offered
 * load, running the identical arrival trace under the paper's static
 * modulo placement and under the load-aware (join-shortest-queue)
 * dispatcher. Emits one JSON document on stdout; progress goes to
 * stderr.
 *
 * Exit status is the self-check: load-aware placement must beat static
 * placement on p99 latency at the headline skewed/high-load point.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

/** One sweep point: offered load split 'skew:1:1' across 3 tenants. */
struct Point
{
    double skew;
    double totalPerSec;
};

wk::ServingOptions
makeOptions(const Point &p, sched::PlacementPolicy placement)
{
    wk::ServingOptions opts;
    // Default run: ~20 ms of traffic. MORPHEUS_BENCH_SCALE scales the
    // observation window (0.25 is the suite-wide default = 1x here).
    opts.durationSec = 0.02 * (morpheus::bench::benchScale() / 0.25);
    opts.seed = 42;
    const double base = p.totalPerSec / (p.skew + 2.0);
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        spec.arrivalsPerSec = (t == 0) ? p.skew * base : base;
        opts.tenants.push_back(spec);
    }
    opts.sys.ssd.sched.placement = placement;
    // Bound concurrent instances: ~3 per core keeps every admitted
    // image inside I-SRAM, with the overflow absorbed by the admission
    // queue (kQueue) instead of failing MINITs device-side.
    opts.sys.ssd.sched.maxInflightTotal = 12;
    // Per-instance D-SRAM grants in force: co-residents split each
    // core's scratchpad (256 KiB / 4 = a 64 KiB grant each) instead of
    // silently overcommitting it. Keep the unpartitioned 64 KiB flush
    // cadence as closely as the grant allows: staging must stay
    // strictly inside the grant (grant-full is not a legal threshold),
    // so flush 4 KiB shy of it rather than at the default grant/4.
    opts.sys.ssd.sched.dsramPartitioning = true;
    opts.flushThreshold = 60 * sim::kKiB;
    return opts;
}

void
printTenantJson(const wk::TenantReport &t, bool last)
{
    std::printf("          {\"id\": %u, \"submitted\": %llu, "
                "\"completed\": %llu, \"rejected\": %llu, "
                "\"retries\": %llu, \"dsram_bounces\": %llu, "
                "\"served_bytes\": %llu, \"p50_us\": %.2f, "
                "\"p95_us\": %.2f, \"p99_us\": %.2f, "
                "\"p999_us\": %.2f, \"max_us\": %.2f}%s\n",
                t.id,
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.retries),
                static_cast<unsigned long long>(t.dsramBounces),
                static_cast<unsigned long long>(t.servedBytes),
                t.p50Us, t.p95Us, t.p99Us, t.p999Us, t.maxUs,
                last ? "" : ",");
}

void
printPolicyJson(const char *name, const wk::ServingReport &r,
                const obs::MetricsRegistry &reg, bool last)
{
    std::printf("      \"%s\": {\n", name);
    std::printf("        \"completed\": %llu,\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("        \"mean_us\": %.2f,\n", r.meanUs);
    std::printf("        \"p50_us\": %.2f,\n", r.p50Us);
    std::printf("        \"p95_us\": %.2f,\n", r.p95Us);
    std::printf("        \"p99_us\": %.2f,\n", r.p99Us);
    std::printf("        \"p999_us\": %.2f,\n", r.p999Us);
    std::printf("        \"max_us\": %.2f,\n", r.maxUs);
    std::printf("        \"jain_fairness\": %.4f,\n", r.jainFairness);
    std::printf("        \"throughput_per_sec\": %.0f,\n",
                r.throughputPerSec);
    // Device-side scheduler counters, federated out of the simulated
    // machine through the metrics registry.
    std::printf("        \"migrations\": %llu,\n",
                static_cast<unsigned long long>(
                    reg.counter("sys.ssd.sched.dispatcher.migrations")));
    std::printf("        \"drr_delays\": %llu,\n",
                static_cast<unsigned long long>(
                    reg.counter("sys.ssd.sched.arbiter.drrDelays")));
    std::printf("        \"dsram_bounces\": %llu,\n",
                static_cast<unsigned long long>(
                    reg.counter("sys.ssd.sched.dsramBounces")));
    std::printf("        \"tenants\": [\n");
    for (std::size_t i = 0; i < r.tenants.size(); ++i)
        printTenantJson(r.tenants[i], i + 1 == r.tenants.size());
    std::printf("        ]\n");
    std::printf("      }%s\n", last ? "" : ",");
}

}  // namespace

int
main()
{
    std::fprintf(stderr,
                 "== serving_tail_latency: static vs load-aware "
                 "placement ==\n");

    // MORPHEUS_TRACE=<file.json> records every sweep run as one trace.
    bench::EnvTrace trace;

    const std::vector<Point> points = {
        {1.0, 12000.0},  // balanced, moderate load
        {4.0, 12000.0},  // skewed, moderate load
        {8.0, 12000.0},  // heavily skewed, moderate load
        {8.0, 24000.0},  // heavily skewed, saturating load
        {4.0, 24000.0},  // headline: skewed, high load
    };

    bool ok = true;
    double headline_static_p99 = 0.0;
    double headline_load_p99 = 0.0;
    std::uint64_t completed_total = 0;
    std::printf("{\n  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        obs::MetricsRegistry stat_reg;
        wk::ServingOptions stat_opts =
            makeOptions(p, sched::PlacementPolicy::kStatic);
        stat_opts.metrics = &stat_reg;
        const wk::ServingReport stat = wk::runServing(stat_opts);

        obs::MetricsRegistry load_reg;
        wk::ServingOptions load_opts =
            makeOptions(p, sched::PlacementPolicy::kLoadAware);
        load_opts.metrics = &load_reg;
        const wk::ServingReport load = wk::runServing(load_opts);

        std::fprintf(stderr,
                     "skew %4.1f rate %6.0f/s | p99 static %8.1f us  "
                     "load-aware %8.1f us  (%+5.1f%%)\n",
                     p.skew, p.totalPerSec, stat.p99Us, load.p99Us,
                     stat.p99Us > 0.0
                         ? 100.0 * (load.p99Us - stat.p99Us) / stat.p99Us
                         : 0.0);

        // Self-check: on every skewed point the load-aware dispatcher
        // must not lose on p99, and on the headline point it must win.
        if (p.skew > 1.0 && load.p99Us > stat.p99Us)
            ok = false;
        if (i + 1 == points.size() && !(load.p99Us < stat.p99Us))
            ok = false;

        if (i + 1 == points.size()) {
            headline_static_p99 = stat.p99Us;
            headline_load_p99 = load.p99Us;
        }
        completed_total += stat.completed + load.completed;

        std::printf("    {\n");
        std::printf("      \"skew\": %.1f,\n", p.skew);
        std::printf("      \"total_arrivals_per_sec\": %.0f,\n",
                    p.totalPerSec);
        printPolicyJson("static", stat, stat_reg, false);
        printPolicyJson("load_aware", load, load_reg, true);
        std::printf("    }%s\n", i + 1 == points.size() ? "" : ",");
    }
    std::printf("  ]\n}\n");

    // Overhead gate: always-on tail-based flight recording must stay
    // cheap enough to leave enabled. Re-run the headline point three
    // times bare and three times with a recorder attached, alternating
    // to spread scheduler noise evenly, and compare the best (least
    // noisy) wall-clock of each. The slack term absorbs timer jitter
    // on sub-100 ms runs; the 5% ratio is the real budget. The
    // recorder run must also reproduce the bare run's p99 exactly
    // (trace invariance).
    double bare_best_ms = 1e300, rec_best_ms = 1e300;
    bool rec_identical = true;
    for (int iter = 0; iter < 3; ++iter) {
        const auto b0 = std::chrono::steady_clock::now();
        const wk::ServingReport bare = wk::runServing(
            makeOptions(points.back(), sched::PlacementPolicy::kLoadAware));
        const auto b1 = std::chrono::steady_clock::now();

        obs::FlightRecorder recorder{obs::FlightRecorderConfig{}};
        const obs::ScopedTraceSink scope(recorder);
        const auto r0 = std::chrono::steady_clock::now();
        const wk::ServingReport rec = wk::runServing(
            makeOptions(points.back(), sched::PlacementPolicy::kLoadAware));
        const auto r1 = std::chrono::steady_clock::now();

        bare_best_ms = std::min(
            bare_best_ms,
            std::chrono::duration<double, std::milli>(b1 - b0).count());
        rec_best_ms = std::min(
            rec_best_ms,
            std::chrono::duration<double, std::milli>(r1 - r0).count());
        rec_identical = rec_identical && bare.p99Us == rec.p99Us &&
                        bare.completed == rec.completed &&
                        bare.makespan == rec.makespan;
    }
    const double budget_ms = bare_best_ms * 1.05 + 100.0;
    const bool overhead_ok = rec_best_ms <= budget_ms;
    std::fprintf(stderr,
                 "recorder overhead: bare %.1f ms  recorded %.1f ms  "
                 "budget %.1f ms  identical results %s -> %s\n",
                 bare_best_ms, rec_best_ms, budget_ms,
                 rec_identical ? "yes" : "NO",
                 overhead_ok ? "ok" : "OVER");
    if (!overhead_ok || !rec_identical)
        ok = false;

    // One-line machine-readable summary (stderr keeps stdout a pure
    // JSON document): future runs build a perf trajectory from CI logs.
    std::fprintf(stderr,
                 "BENCH_RESULT {\"bench\": \"serving_tail_latency\", "
                 "\"scale\": %g, \"points\": %zu, "
                 "\"completed_total\": %llu, "
                 "\"headline_static_p99_us\": %.2f, "
                 "\"headline_load_aware_p99_us\": %.2f, "
                 "\"self_check\": %s}\n",
                 morpheus::bench::benchScale(), points.size(),
                 static_cast<unsigned long long>(completed_total),
                 headline_static_p99, headline_load_p99,
                 ok ? "true" : "false");

    bench::writeBenchJson(
        "serving_tail_latency", "headlineLoadAwareP99Us",
        headline_load_p99, "us", /*higher_is_better=*/false,
        {{"headlineStaticP99Us", headline_static_p99, "us"},
         {"completedTotal", static_cast<double>(completed_total),
          "requests"}},
        bench::BenchConfig{});

    std::fprintf(stderr, "self-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
